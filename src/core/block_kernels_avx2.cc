// AVX2 variant of the block-codec kernels. Compiled into every x86-64 build
// (the ISA-specific code is gated per function with the "avx2" target
// attribute, so no special per-file flags are needed) and dispatched only
// after the runtime CPUID probe (util/cpu.h) confirms support.
//
// Byte-identity notes (enforced by tests/block_codec_test.cc):
//  * llround/std::round are round-half-away-from-zero; _mm256_round_pd is
//    round-half-even. The exact-tie adjustment below (+1 when the rounding
//    residue is exactly +0.5 and the operand positive, -1 mirrored) restores
//    away-from-zero semantics. The residue scaled - rn is exact for
//    |scaled| < 2^52, far above the quantizer's radius (<= 2^19).
//  * No FMA: products and sums use explicit mul/add intrinsics in the same
//    association as the scalar expressions, and "avx2" does not imply
//    contraction.
//  * Escape decisions replicate the scalar comparisons including their NaN
//    behavior (ordered compares, inverted via blend where the scalar test
//    is a negated comparison).

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

#include "core/block_kernels.h"

#define MDZ_TARGET_AVX2 __attribute__((target("avx2")))

namespace mdz::core::internal {

namespace {

MDZ_TARGET_AVX2 inline __m256d Abs(__m256d v) {
  return _mm256_and_pd(
      v, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll)));
}

// Round-half-away-from-zero of x (llround/std::round semantics) for
// |x| < 2^52: round-half-even plus an exact-tie push away from zero.
MDZ_TARGET_AVX2 inline __m256d RoundHalfAway(__m256d x) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  __m256d rn =
      _mm256_round_pd(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d residue = _mm256_sub_pd(x, rn);
  const __m256d up =
      _mm256_and_pd(_mm256_cmp_pd(residue, half, _CMP_EQ_OQ),
                    _mm256_cmp_pd(x, zero, _CMP_GT_OQ));
  const __m256d down =
      _mm256_and_pd(_mm256_cmp_pd(residue, _mm256_sub_pd(zero, half),
                                  _CMP_EQ_OQ),
                    _mm256_cmp_pd(x, zero, _CMP_LT_OQ));
  rn = _mm256_add_pd(rn, _mm256_and_pd(up, one));
  return _mm256_sub_pd(rn, _mm256_and_pd(down, one));
}

// Narrows a 4x64-bit lane mask to 4x32-bit (lane i of the result is the low
// dword of lane i of `mask64`; for compare masks both dwords are equal).
MDZ_TARGET_AVX2 inline __m128i Mask64To32(__m256d mask64) {
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(mask64), idx));
}

MDZ_TARGET_AVX2 void QuantizeRowAvx2(const quant::LinearQuantizer& q,
                                     const double* values, const double* preds,
                                     size_t n, uint32_t* codes,
                                     double* decoded) {
  const double eb = q.error_bound();
  const __m256d v_inv2eb = _mm256_set1_pd(q.inv_two_eb());
  const __m256d v_two_eb = _mm256_set1_pd(2.0 * eb);
  const __m256d v_eb = _mm256_set1_pd(eb);
  const __m256d v_limit =
      _mm256_set1_pd(static_cast<double>(q.radius()) - 1.0);
  const __m128i v_radius = _mm_set1_epi32(static_cast<int>(q.radius()));

  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d p = _mm256_loadu_pd(preds + i);
    const __m256d scaled = _mm256_mul_pd(_mm256_sub_pd(v, p), v_inv2eb);
    // Scalar: escape unless |scaled| < radius-1 (NaN escapes via !(...)).
    const __m256d in_range = _mm256_cmp_pd(Abs(scaled), v_limit, _CMP_LT_OQ);
    const __m256d qd = RoundHalfAway(scaled);
    // Scalar: prediction + (2.0 * eb) * q, mul before add, no contraction.
    const __m256d recon = _mm256_add_pd(p, _mm256_mul_pd(v_two_eb, qd));
    // Scalar: escape if fabs(recon - value) > eb (NaN compares false and
    // therefore keeps — matched by the ordered GT here).
    const __m256d err_bad =
        _mm256_cmp_pd(Abs(_mm256_sub_pd(recon, v)), v_eb, _CMP_GT_OQ);
    const __m256d keep = _mm256_andnot_pd(err_bad, in_range);

    _mm256_storeu_pd(decoded + i, _mm256_blendv_pd(v, recon, keep));
    // Zero escape lanes before the int conversion so the convert input is
    // always a small integral value.
    const __m128i qi = _mm256_cvtpd_epi32(_mm256_and_pd(qd, keep));
    const __m128i code = _mm_add_epi32(qi, v_radius);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i),
                     _mm_and_si128(code, Mask64To32(keep)));
  }
  for (; i < n; ++i) {
    codes[i] = q.Encode(values[i], preds[i], &decoded[i]);
  }
}

MDZ_TARGET_AVX2 bool DequantizeRowAvx2(const quant::LinearQuantizer& q,
                                       const uint32_t* codes,
                                       const double* preds, size_t n,
                                       double* decoded) {
  const uint32_t scale = q.scale();
  const __m256d v_two_eb = _mm256_set1_pd(2.0 * q.error_bound());
  const __m128i v_radius = _mm_set1_epi32(static_cast<int>(q.radius()));
  // Huffman alphabets are capped at 2^28, so codes fit in int32 and signed
  // compares are safe.
  const __m128i v_last = _mm_set1_epi32(static_cast<int>(scale) - 1);
  const __m128i zero = _mm_setzero_si128();

  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m128i bad = _mm_or_si128(_mm_cmpeq_epi32(c, zero),
                                     _mm_cmpgt_epi32(c, v_last));
    if (_mm_movemask_epi8(bad) != 0) return false;
    const __m256d qd = _mm256_cvtepi32_pd(_mm_sub_epi32(c, v_radius));
    const __m256d p = _mm256_loadu_pd(preds + i);
    _mm256_storeu_pd(decoded + i,
                     _mm256_add_pd(p, _mm256_mul_pd(v_two_eb, qd)));
  }
  for (; i < n; ++i) {
    const uint32_t code = codes[i];
    if (code == 0 || code >= scale) return false;
    decoded[i] = q.Decode(code, preds[i]);
  }
  return true;
}

MDZ_TARGET_AVX2 void VqPredictAvx2(const double* values, size_t n, double mu,
                                   double lambda, double* levels_d,
                                   double* preds) {
  const __m256d v_mu = _mm256_set1_pd(mu);
  const __m256d v_lambda = _mm256_set1_pd(lambda);
  const __m256d v_max = _mm256_set1_pd(kMaxLevel);
  const __m256d v_negmax = _mm256_set1_pd(-kMaxLevel);
  const __m256d v_sign = _mm256_set1_pd(-0.0);

  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // Scalar: round((v - mu) / lambda) — true division, same rounding.
    const __m256d t = _mm256_div_pd(_mm256_sub_pd(v, v_mu), v_lambda);
    // RoundHalfAway's tie adjustment normalizes -0.0 to +0.0, but
    // std::round keeps the sign of zero (round(-0.3) == -0.0); OR the
    // operand's sign back in. Nonzero results already carry it.
    const __m256d l =
        _mm256_or_pd(RoundHalfAway(t), _mm256_and_pd(t, v_sign));
    // Scalar clamp: !(l > -kMaxLevel) -> -kMaxLevel (catches NaN), then
    // !(l < kMaxLevel) -> kMaxLevel.
    const __m256d gt = _mm256_cmp_pd(l, v_negmax, _CMP_GT_OQ);
    const __m256d lo = _mm256_blendv_pd(v_negmax, l, gt);
    const __m256d lt = _mm256_cmp_pd(lo, v_max, _CMP_LT_OQ);
    const __m256d clamped = _mm256_blendv_pd(v_max, lo, lt);
    _mm256_storeu_pd(levels_d + i, clamped);
    _mm256_storeu_pd(preds + i,
                     _mm256_add_pd(v_mu, _mm256_mul_pd(v_lambda, clamped)));
  }
  for (; i < n; ++i) {
    double l = std::round((values[i] - mu) / lambda);
    if (!(l > -kMaxLevel)) {
      l = -kMaxLevel;
    } else if (!(l < kMaxLevel)) {
      l = kMaxLevel;
    }
    levels_d[i] = l;
    preds[i] = mu + lambda * l;
  }
}

MDZ_TARGET_AVX2 inline void Transpose8x8(const uint32_t* src,
                                         size_t src_stride, uint32_t* dst,
                                         size_t dst_stride) {
  // No lambdas here: they would not inherit the avx2 target attribute.
#define MDZ_LOAD_ROW(r) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + (r) * src_stride))
  const __m256i r0 = MDZ_LOAD_ROW(0), r1 = MDZ_LOAD_ROW(1),
                r2 = MDZ_LOAD_ROW(2), r3 = MDZ_LOAD_ROW(3);
  const __m256i r4 = MDZ_LOAD_ROW(4), r5 = MDZ_LOAD_ROW(5),
                r6 = MDZ_LOAD_ROW(6), r7 = MDZ_LOAD_ROW(7);
#undef MDZ_LOAD_ROW

  const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);
  const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);
  const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);
  const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);
  const __m256i t4 = _mm256_unpacklo_epi32(r4, r5);
  const __m256i t5 = _mm256_unpackhi_epi32(r4, r5);
  const __m256i t6 = _mm256_unpacklo_epi32(r6, r7);
  const __m256i t7 = _mm256_unpackhi_epi32(r6, r7);

  const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);

#define MDZ_STORE_COL(c, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (c) * dst_stride), (v))
  MDZ_STORE_COL(0, _mm256_permute2x128_si256(u0, u4, 0x20));
  MDZ_STORE_COL(1, _mm256_permute2x128_si256(u1, u5, 0x20));
  MDZ_STORE_COL(2, _mm256_permute2x128_si256(u2, u6, 0x20));
  MDZ_STORE_COL(3, _mm256_permute2x128_si256(u3, u7, 0x20));
  MDZ_STORE_COL(4, _mm256_permute2x128_si256(u0, u4, 0x31));
  MDZ_STORE_COL(5, _mm256_permute2x128_si256(u1, u5, 0x31));
  MDZ_STORE_COL(6, _mm256_permute2x128_si256(u2, u6, 0x31));
  MDZ_STORE_COL(7, _mm256_permute2x128_si256(u3, u7, 0x31));
#undef MDZ_STORE_COL
}

MDZ_TARGET_AVX2 void TransposeAvx2(const uint32_t* in, size_t rows,
                                   size_t cols, uint32_t* out) {
  const size_t rows_full = rows & ~size_t{7};
  const size_t cols_full = cols & ~size_t{7};
  for (size_t r = 0; r < rows_full; r += 8) {
    for (size_t c = 0; c < cols_full; c += 8) {
      Transpose8x8(in + r * cols + c, cols, out + c * rows + r, rows);
    }
  }
  for (size_t r = rows_full; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
  }
  for (size_t r = 0; r < rows_full; ++r) {
    for (size_t c = cols_full; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

}  // namespace

const BlockKernels& Avx2BlockKernels() {
  static const BlockKernels kAvx2 = {
      "avx2",           util::SimdVariant::kAvx2,
      &QuantizeRowAvx2, &DequantizeRowAvx2,
      &VqPredictAvx2,   &TransposeAvx2,
  };
  return kAvx2;
}

}  // namespace mdz::core::internal

#endif  // x86-64
