#include "core/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace mdz::core {

namespace {

std::mutex& SharedPoolMutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& SharedPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

// Pool telemetry (docs/OBSERVABILITY.md). Handles are resolved once and
// cached; every site is gated on obs::Enabled() so the disabled cost is one
// relaxed load. "Queue depth" counts batches submitted and not yet complete
// (a batch leaves the internal queue as soon as its last iteration is
// claimed, which would read as permanently ~0).
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pool/queue_depth");
  return g;
}

obs::Histogram* TaskSecondsHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pool/task_seconds", obs::DurationBuckets());
  return h;
}

obs::Histogram* BatchSecondsHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pool/batch_seconds", obs::DurationBuckets());
  return h;
}

// Runs one claimed iteration, timed when telemetry is on. pool/busy_ns over
// (elapsed wall time x pool thread count) is the worker-utilization ratio.
void RunIteration(const std::function<void(size_t)>& fn, size_t i) {
  if (!obs::Enabled()) {
    fn(i);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  fn(i);
  const auto dt = std::chrono::steady_clock::now() - t0;
  TaskSecondsHist()->Observe(std::chrono::duration<double>(dt).count());
  MDZ_COUNTER_ADD("pool/tasks", 1);
  MDZ_COUNTER_ADD(
      "pool/busy_ns",
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
}

}  // namespace

// Heap-owned single-iteration batch; the worker that runs it deletes it.
// Defined before WorkerLoop so the delete sees a complete type.
struct ThreadPool::DetachedTask {
  std::function<void(size_t)> fn;
  Batch batch;
};

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n <= 1) return;  // serial pool: every batch runs on the calling thread
  workers_.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

size_t ThreadPool::ClaimIterationLocked(Batch* batch) {
  if (batch->next >= batch->end) return batch->end;
  const size_t i = batch->next++;
  if (batch->next >= batch->end) {
    // Last iteration claimed: nothing left for other threads to pick up.
    std::erase(queue_, batch);
  }
  return i;
}

void ThreadPool::WorkerLoop() {
  obs::SetTimelineThreadName("pool-worker");
  // Claim the profiler ring / span-stack slot here, in normal context,
  // rather than inside the first SIGPROF delivered to this worker.
  obs::PrepareThreadForProfiling();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    // On shutdown, drain the queue before exiting so detached (Post) tasks
    // still queued at destruction run exactly once instead of leaking.
    if (queue_.empty()) return;  // only reachable when shutdown_ is set
    // Batches in the queue always have unclaimed iterations (they are
    // retired the moment their last iteration is claimed).
    Batch* batch = queue_.front();
    const size_t i = ClaimIterationLocked(batch);
    lock.unlock();
    {
      // Adopt the submitter's trace context for the duration of the
      // iteration: spans opened by the task parent onto the submitting span.
      obs::ScopedTraceContext context(batch->context);
      RunIteration(*batch->fn, i);
    }
    bool retire_detached = false;
    {
      std::lock_guard<std::mutex> done_lock(batch->done_mu);
      ++batch->completed;
      if (batch->detached) {
        retire_detached = batch->completed == batch->end - batch->begin;
      } else {
        // Notify while holding done_mu: the submitter cannot observe
        // completion (and destroy the batch) before this thread releases the
        // lock, so the notify never touches freed memory.
        batch->done_cv.notify_one();
      }
    }
    if (retire_detached) {
      delete static_cast<DetachedTask*>(batch->owner);
    }
    lock.lock();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t count = end - begin;
  if (serial() || count == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const bool timed = obs::Enabled();
  std::chrono::steady_clock::time_point batch_start;
  if (timed) {
    batch_start = std::chrono::steady_clock::now();
    QueueDepthGauge()->Add(1);
  }

  Batch batch;
  batch.fn = &fn;
  batch.context = obs::CurrentTraceContext();
  batch.begin = begin;
  batch.end = end;
  batch.next = begin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(&batch);
  }
  work_cv_.notify_all();

  // The submitting thread drains its own batch alongside the workers; this
  // is what makes nested ParallelFor calls (pool task fanning out onto the
  // same pool) deadlock-free.
  while (true) {
    size_t i = end;
    {
      std::lock_guard<std::mutex> lock(mu_);
      i = ClaimIterationLocked(&batch);
    }
    if (i >= end) break;
    RunIteration(fn, i);
    std::lock_guard<std::mutex> done_lock(batch.done_mu);
    ++batch.completed;
  }

  // Wait for iterations claimed by workers. The batch left the queue when
  // its last iteration was claimed, and workers only touch it under done_mu,
  // so returning (and destroying the batch) afterwards is safe.
  std::unique_lock<std::mutex> done_lock(batch.done_mu);
  batch.done_cv.wait(done_lock, [&] { return batch.completed == count; });
  done_lock.unlock();

  if (timed) {
    QueueDepthGauge()->Add(-1);
    BatchSecondsHist()->Observe(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    batch_start)
                                    .count());
    MDZ_COUNTER_ADD("pool/batches", 1);
  }
}

void ThreadPool::RunTasks(std::span<const std::function<void()>> tasks) {
  ParallelFor(0, tasks.size(), [&tasks](size_t i) { tasks[i](); });
}

void ThreadPool::Post(std::function<void()> task) {
  if (serial()) {
    task();
    return;
  }
  auto* detached = new DetachedTask;
  detached->fn = [t = std::move(task)](size_t) { t(); };
  detached->batch.fn = &detached->fn;
  detached->batch.context = obs::CurrentTraceContext();
  detached->batch.begin = 0;
  detached->batch.end = 1;
  detached->batch.next = 0;
  detached->batch.detached = true;
  detached->batch.owner = detached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(&detached->batch);
  }
  work_cv_.notify_one();
}

ThreadPool& ThreadPool::Shared() {
  std::lock_guard<std::mutex> lock(SharedPoolMutex());
  auto& slot = SharedPoolSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::SetSharedPoolThreads(size_t num_threads) {
  std::lock_guard<std::mutex> lock(SharedPoolMutex());
  SharedPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace mdz::core
