#include "core/quality_audit.h"

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mdz::core {

namespace {

// Mirrors the per-stats bucket layout into the global registry so the
// rel_error distribution shows up in metrics.json / metrics.prom alongside
// the span histograms.
obs::Histogram* RelErrorHistogram() {
  return obs::MetricsRegistry::Global().GetHistogram(
      "audit/rel_error", std::span<const double>(obs::kQualityBucketBounds));
}

}  // namespace

Result<obs::FieldQuality> AuditField(std::span<const uint8_t> stream,
                                     const Trajectory& original, int axis,
                                     const AuditOptions& options) {
  MDZ_SPAN("audit_field");
  if (axis < 0 || axis > 2) {
    return Status::InvalidArgument("audit axis must be 0, 1, or 2");
  }

  MDZ_ASSIGN_OR_RETURN(auto decompressor, FieldDecompressor::Open(stream));
  if (decompressor->num_particles() != original.num_particles()) {
    return Status::InvalidArgument(
        "particle count mismatch: archive has " +
        std::to_string(decompressor->num_particles()) + ", original has " +
        std::to_string(original.num_particles()));
  }
  MDZ_ASSIGN_OR_RETURN(auto blocks, decompressor->ListBlocks());
  size_t stream_snapshots = 0;
  for (const auto& b : blocks) stream_snapshots += b.snapshots;
  if (stream_snapshots != original.num_snapshots()) {
    return Status::InvalidArgument(
        "snapshot count mismatch: archive has " +
        std::to_string(stream_snapshots) + ", original has " +
        std::to_string(original.num_snapshots()));
  }

  obs::FieldQuality field;
  field.axis = axis;
  field.bound = decompressor->absolute_error_bound();
  field.blocks.reserve(blocks.size());

  const bool feed_registry = options.telemetry && obs::Enabled();
  obs::Histogram* rel_error = feed_registry ? RelErrorHistogram() : nullptr;

  std::vector<double> decoded;
  size_t snapshot_index = 0;
  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    obs::BlockQuality block;
    block.block_index = bi;
    block.first_snapshot = blocks[bi].first_snapshot;
    block.snapshots = blocks[bi].snapshots;
    block.method = std::string(MethodName(blocks[bi].method));

    for (size_t s = 0; s < blocks[bi].snapshots; ++s, ++snapshot_index) {
      MDZ_ASSIGN_OR_RETURN(bool have, decompressor->Next(&decoded));
      if (!have) {
        return Status::Corruption(
            "stream ended before the block index said it would (snapshot " +
            std::to_string(snapshot_index) + ")");
      }
      const std::vector<double>& ref =
          original.snapshots[snapshot_index].axes[axis];
      for (size_t p = 0; p < decoded.size(); ++p) {
        const double ratio = block.stats.Observe(ref[p], decoded[p], field.bound);
        if (rel_error != nullptr) rel_error->Observe(ratio);
      }
    }

    if (options.trace != nullptr) options.trace->Record(axis, block);
    field.stats.Merge(block.stats);
    field.blocks.push_back(std::move(block));
  }

  if (feed_registry) obs::RecordQualityMetrics(field);
  return field;
}

Result<obs::QualityReport> AuditTrajectory(
    const CompressedTrajectory& compressed, const Trajectory& original,
    const AuditOptions& options) {
  obs::QualityReport report;
  report.fields.reserve(3);
  for (int axis = 0; axis < 3; ++axis) {
    MDZ_ASSIGN_OR_RETURN(
        auto field, AuditField(compressed.axes[axis], original, axis, options));
    report.fields.push_back(std::move(field));
  }
  return report;
}

}  // namespace mdz::core
