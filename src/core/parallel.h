#ifndef MDZ_CORE_PARALLEL_H_
#define MDZ_CORE_PARALLEL_H_

#include "core/mdz.h"

namespace mdz::core {

// Multithreaded trajectory compression/decompression: the three axis streams
// are independent (paper: per-axis compression), so they compress on
// separate threads. The output is byte-identical to the serial
// CompressTrajectory — parallelism changes wall-clock only, never the
// format.
Result<CompressedTrajectory> CompressTrajectoryParallel(
    const Trajectory& trajectory, const Options& options);

Result<Trajectory> DecompressTrajectoryParallel(
    const CompressedTrajectory& compressed);

}  // namespace mdz::core

#endif  // MDZ_CORE_PARALLEL_H_
