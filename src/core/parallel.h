#ifndef MDZ_CORE_PARALLEL_H_
#define MDZ_CORE_PARALLEL_H_

#include <span>
#include <vector>

#include "core/mdz.h"
#include "core/thread_pool.h"

namespace mdz::core {

// Multithreaded trajectory compression/decompression on a shared ThreadPool
// (defaulting to ThreadPool::Shared() when `pool` is null). Three layers of
// parallelism ride on the same pool:
//
//  1. the three axis streams are independent (paper: per-axis compression)
//     and run as pool tasks;
//  2. within each axis, ADP trial-compresses its candidate predictors
//     concurrently (Options::pool is wired up automatically);
//  3. on decompression, non-chained streams decode their blocks
//     concurrently via FieldDecompressor::DecodeAll.
//
// The output is byte-identical to the serial CompressTrajectory for every
// method and thread count — parallelism changes wall-clock only, never the
// format.
Result<CompressedTrajectory> CompressTrajectoryParallel(
    const Trajectory& trajectory, const Options& options,
    ThreadPool* pool = nullptr);

Result<Trajectory> DecompressTrajectoryParallel(
    const CompressedTrajectory& compressed, ThreadPool* pool = nullptr);

// Decompresses one field stream, decoding blocks concurrently when the
// stream is not TI-chained (falls back to sequential otherwise). Identical
// output to DecompressField.
Result<std::vector<std::vector<double>>> DecompressFieldParallel(
    std::span<const uint8_t> data, ThreadPool* pool = nullptr);

}  // namespace mdz::core

#endif  // MDZ_CORE_PARALLEL_H_
