#ifndef MDZ_CORE_PREDICTORS_H_
#define MDZ_CORE_PREDICTORS_H_

// The predictor stage of the block codec (SZ3-style composable pipeline,
// DESIGN.md "Stage boundary"). A Predictor walks the (snapshot x
// particle) plane in its method's processing order and feeds predictions to
// a quant::RowCoder — the quantizer seam — which is implemented by the
// encode driver (quantize + escape side channel) and the decode driver
// (reconstruct from codes). Model-based methods (the VQ family) have
// distinct encode/decode implementations because the level-delta stream is
// derived from raw data on one side and replayed on the other; everything
// else is one class driven identically on both sides, which is what makes
// encoder/decoder divergence structurally impossible for those methods.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/block_codec.h"
#include "quant/row_coder.h"
#include "util/byte_buffer.h"

namespace mdz::core::internal {

class Predictor {
 public:
  virtual ~Predictor() = default;

  // Drives prediction for the whole block through `coder`, in the method's
  // processing order. `state` carries the cross-buffer predictor snapshots
  // (stream initial, previous buffer's last row).
  virtual Status Drive(const PredictorState& state, quant::RowCoder& coder) = 0;
};

// Number of level-delta (J) symbols `method` contributes for an S x N block:
// the validation contract between the predictor and the encoder backend.
size_t ExpectedJCodes(Method method, size_t s_count, size_t n);

// TI blocks lay their codes out in interpolation processing order (each
// stride level forms a homogeneous region for the dictionary coder); every
// other method uses the codec's configured Seq layout.
bool UsesInterpolationLayout(Method method);

// Positional index permutation of the TI processing order.
std::vector<size_t> TiPermutation(size_t s_count, size_t n);

// Encode-side factory. `buffer` is the raw block; VQ-family predictors
// derive the level grid codes from it into *jcodes / *j_extras. `method`
// must be concrete (not kAdaptive).
std::unique_ptr<Predictor> MakeEncodePredictor(
    Method method, std::span<const std::vector<double>> buffer,
    const LevelModel& levels, std::vector<uint32_t>* jcodes,
    ByteWriter* j_extras);

// Decode-side factory. VQ-family predictors replay the level-delta stream
// from `jcodes` / *j_extras; both must outlive the predictor.
std::unique_ptr<Predictor> MakeDecodePredictor(
    Method method, const LevelModel& levels,
    const std::vector<uint32_t>& jcodes, ByteReader* j_extras);

}  // namespace mdz::core::internal

#endif  // MDZ_CORE_PREDICTORS_H_
