#include "core/predictors.h"

#include <utility>

#include "core/block_kernels.h"
#include "obs/span.h"

namespace mdz::core::internal {

namespace {

// Level-index delta alphabet: symbol 0 escapes to a varint side channel,
// symbols 1..kJAlphabet-1 encode zigzag(delta) inline.
constexpr uint32_t kJAlphabet = 1024;

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Interpolation processing order for the TI method: snapshot 0 first (coded
// by the caller), then midpoints level by level with halving stride.
// Identical on encode and decode.
std::vector<std::pair<size_t, size_t>> InterpolationOrder(size_t s_count) {
  std::vector<std::pair<size_t, size_t>> order;
  if (s_count <= 1) return order;
  size_t top = 1;
  while (top * 2 < s_count) top *= 2;
  for (size_t stride = top; stride >= 1; stride /= 2) {
    for (size_t t = stride; t < s_count; t += 2 * stride) {
      order.emplace_back(t, stride);
    }
    if (stride == 1) break;
  }
  return order;
}

// Spline prediction for the TI method from already-decoded snapshots:
// cubic when the 4-anchor stencil exists, linear with both neighbors,
// previous-anchor extrapolation at the right border. The stencil choice is
// uniform in i, so prediction is computed a row at a time: returns either a
// previously decoded row directly or `scratch` filled with the stencil.
const double* TiPredictRow(const std::vector<std::vector<double>>& decoded,
                           const std::vector<uint8_t>& ready, size_t t,
                           size_t stride, size_t s_count, size_t n,
                           double* scratch) {
  const bool has_right = (t + stride < s_count) && ready[t + stride];
  if (!has_right) return decoded[t - stride].data();
  const bool has_far_left = (t >= 3 * stride) && ready[t - 3 * stride];
  const bool has_far_right =
      (t + 3 * stride < s_count) && ready[t + 3 * stride];
  const double* b = decoded[t - stride].data();
  const double* c = decoded[t + stride].data();
  if (has_far_left && has_far_right) {
    const double* a = decoded[t - 3 * stride].data();
    const double* d = decoded[t + 3 * stride].data();
    for (size_t i = 0; i < n; ++i) {
      scratch[i] = (-a[i] + 9.0 * b[i] + 9.0 * c[i] - d[i]) / 16.0;
    }
    return scratch;
  }
  for (size_t i = 0; i < n; ++i) scratch[i] = 0.5 * (b[i] + c[i]);
  return scratch;
}

// First row of a block without cross-buffer context — the stream's very
// first snapshot: order-1 Lorenzo in space, element-wise because each
// prediction reads the just-coded left neighbor.
Status CodeSpatialFirstRow(quant::RowCoder& coder) {
  const size_t n = coder.row_len();
  for (size_t i = 0; i < n; ++i) {
    const double pred = (i > 0) ? coder.decoded()[0][i - 1] : 0.0;
    MDZ_RETURN_IF_ERROR(coder.CodeElement(0, i, pred));
  }
  return Status::OK();
}

// Row 0 of a time-predicted block (MT family): the stream's initial
// snapshot when known, spatial Lorenzo otherwise. With `chain` set (TI),
// the previous buffer's last row takes precedence over the initial.
Status CodeFirstRow(const PredictorState& state, quant::RowCoder& coder,
                    bool chain) {
  if (chain && state.has_prev_last()) {
    return coder.CodeRow(0, state.prev_last.data());
  }
  if (state.has_initial()) {
    return coder.CodeRow(0, state.initial.data());
  }
  return CodeSpatialFirstRow(coder);
}

// --- VQ family --------------------------------------------------------------

// Encode side: derives the level index of every value from the raw data via
// the kernel lookup, emits the zigzag level deltas into the J stream, and
// predicts each value at its level's grid position. `vq_all_rows` selects
// VQ (every snapshot) vs VQT (snapshot 0 only, time prediction after).
class VqEncodePredictor : public Predictor {
 public:
  VqEncodePredictor(std::span<const std::vector<double>> buffer,
                    const LevelModel& levels, bool vq_all_rows,
                    std::vector<uint32_t>* jcodes, ByteWriter* j_extras)
      : buffer_(buffer),
        levels_(levels),
        vq_all_rows_(vq_all_rows),
        jcodes_(jcodes),
        j_extras_(j_extras) {}

  Status Drive(const PredictorState& state, quant::RowCoder& coder) override {
    (void)state;
    const size_t s_count = coder.rows();
    const size_t n = coder.row_len();
    std::vector<double> levels_scratch(n);
    std::vector<double> pred_scratch(n);
    const BlockKernels& kernels = ActiveBlockKernels();

    auto code_vq_row = [&](size_t s) -> Status {
      kernels.vq_predict(buffer_[s].data(), n, levels_.mu, levels_.lambda,
                         levels_scratch.data(), pred_scratch.data());
      int64_t prev_level = 0;
      for (size_t i = 0; i < n; ++i) {
        const int64_t level = static_cast<int64_t>(levels_scratch[i]);
        const uint64_t zz = Zigzag(level - prev_level);
        prev_level = level;
        if (zz < kJAlphabet - 1) {
          jcodes_->push_back(static_cast<uint32_t>(zz + 1));
        } else {
          jcodes_->push_back(0);
          j_extras_->PutVarint(zz);
        }
      }
      return coder.CodeRow(s, pred_scratch.data());
    };

    if (vq_all_rows_) {
      MDZ_SPAN("predict_vq");
      for (size_t s = 0; s < s_count; ++s) {
        MDZ_RETURN_IF_ERROR(code_vq_row(s));
      }
      return Status::OK();
    }
    MDZ_SPAN("predict_vqt");
    if (s_count > 0) MDZ_RETURN_IF_ERROR(code_vq_row(0));
    for (size_t s = 1; s < s_count; ++s) {
      MDZ_RETURN_IF_ERROR(coder.CodeRow(s, coder.decoded()[s - 1].data()));
    }
    return Status::OK();
  }

 private:
  std::span<const std::vector<double>> buffer_;
  LevelModel levels_;
  bool vq_all_rows_;
  std::vector<uint32_t>* jcodes_;
  ByteWriter* j_extras_;
};

// Decode side: replays the level-delta stream to reproduce the encoder's
// grid predictions exactly.
class VqDecodePredictor : public Predictor {
 public:
  VqDecodePredictor(const LevelModel& levels, bool vq_all_rows,
                    const std::vector<uint32_t>& jcodes, ByteReader* j_extras)
      : levels_(levels),
        vq_all_rows_(vq_all_rows),
        jcodes_(jcodes),
        j_extras_(j_extras) {}

  Status Drive(const PredictorState& state, quant::RowCoder& coder) override {
    (void)state;
    const size_t s_count = coder.rows();
    const size_t n = coder.row_len();
    std::vector<double> pred_scratch(n);

    auto code_vq_row = [&](size_t s) -> Status {
      int64_t prev_level = 0;
      for (size_t i = 0; i < n; ++i) {
        if (j_pos_ >= jcodes_.size()) {
          return Status::Corruption("level-delta code stream exhausted");
        }
        const uint32_t sym = jcodes_[j_pos_++];
        uint64_t zz;
        if (sym == 0) {
          MDZ_RETURN_IF_ERROR(j_extras_->GetVarint(&zz));
        } else {
          zz = sym - 1;
        }
        const int64_t level = prev_level + Unzigzag(zz);
        prev_level = level;
        pred_scratch[i] =
            levels_.mu + levels_.lambda * static_cast<double>(level);
      }
      return coder.CodeRow(s, pred_scratch.data());
    };

    if (vq_all_rows_) {
      for (size_t s = 0; s < s_count; ++s) {
        MDZ_RETURN_IF_ERROR(code_vq_row(s));
      }
      return Status::OK();
    }
    MDZ_RETURN_IF_ERROR(code_vq_row(0));
    for (size_t s = 1; s < s_count; ++s) {
      MDZ_RETURN_IF_ERROR(coder.CodeRow(s, coder.decoded()[s - 1].data()));
    }
    return Status::OK();
  }

 private:
  LevelModel levels_;
  bool vq_all_rows_;
  const std::vector<uint32_t>& jcodes_;
  ByteReader* j_extras_;
  size_t j_pos_ = 0;
};

// --- Time prediction (MT and the bit-adaptive candidate) --------------------

// Side-independent: predictions are pure functions of the cross-buffer state
// and previously reconstructed rows, so one class drives both encode and
// decode. The bit-adaptive method shares this predictor and differs only in
// its quantizer grid and encoder backend.
class TimePredictor : public Predictor {
 public:
  explicit TimePredictor(const char* span_name) : span_name_(span_name) {}

  Status Drive(const PredictorState& state, quant::RowCoder& coder) override {
    MDZ_SPAN(span_name_);
    const size_t s_count = coder.rows();
    if (s_count > 0) {
      MDZ_RETURN_IF_ERROR(CodeFirstRow(state, coder, /*chain=*/false));
    }
    for (size_t s = 1; s < s_count; ++s) {
      MDZ_RETURN_IF_ERROR(coder.CodeRow(s, coder.decoded()[s - 1].data()));
    }
    return Status::OK();
  }

 private:
  const char* span_name_;
};

// --- 2-D Lorenzo over the (snapshot x particle) plane -----------------------

// Order-1 Lorenzo in both dimensions: each value is predicted from its
// reconstructed time, space, and corner neighbors. Element-wise by nature —
// the space term reads the current row's just-coded left neighbor — so it
// trades encode throughput for ratio on fields where spatial and temporal
// structure combine (the trial loop decides whether that pays).
class Lorenzo2DPredictor : public Predictor {
 public:
  Status Drive(const PredictorState& state, quant::RowCoder& coder) override {
    MDZ_SPAN("predict_l2d");
    const size_t s_count = coder.rows();
    const size_t n = coder.row_len();
    if (s_count > 0) {
      MDZ_RETURN_IF_ERROR(CodeFirstRow(state, coder, /*chain=*/false));
    }
    const auto& decoded = coder.decoded();
    for (size_t t = 1; t < s_count; ++t) {
      for (size_t i = 0; i < n; ++i) {
        const double up = decoded[t - 1][i];
        const double pred =
            (i > 0) ? up + decoded[t][i - 1] - decoded[t - 1][i - 1] : up;
        MDZ_RETURN_IF_ERROR(coder.CodeElement(t, i, pred));
      }
    }
    return Status::OK();
  }
};

// --- Temporal interpolation -------------------------------------------------

class TiPredictor : public Predictor {
 public:
  Status Drive(const PredictorState& state, quant::RowCoder& coder) override {
    MDZ_SPAN("predict_ti");
    const size_t s_count = coder.rows();
    const size_t n = coder.row_len();
    if (s_count > 0) {
      MDZ_RETURN_IF_ERROR(CodeFirstRow(state, coder, /*chain=*/true));
    }
    std::vector<double> scratch(n);
    std::vector<uint8_t> ready(s_count, 0);
    if (s_count > 0) ready[0] = 1;
    for (const auto& [t, stride] : InterpolationOrder(s_count)) {
      const double* preds = TiPredictRow(coder.decoded(), ready, t, stride,
                                         s_count, n, scratch.data());
      MDZ_RETURN_IF_ERROR(coder.CodeRow(t, preds));
      ready[t] = 1;
    }
    return Status::OK();
  }
};

}  // namespace

size_t ExpectedJCodes(Method method, size_t s_count, size_t n) {
  switch (method) {
    case Method::kVQ:
      return s_count * n;
    case Method::kVQT:
      return n;
    default:
      return 0;
  }
}

bool UsesInterpolationLayout(Method method) { return method == Method::kTI; }

std::vector<size_t> TiPermutation(size_t s_count, size_t n) {
  std::vector<size_t> perm;
  perm.reserve(s_count * n);
  for (size_t i = 0; i < n; ++i) perm.push_back(i);
  for (const auto& [t, stride] : InterpolationOrder(s_count)) {
    (void)stride;
    for (size_t i = 0; i < n; ++i) perm.push_back(t * n + i);
  }
  return perm;
}

std::unique_ptr<Predictor> MakeEncodePredictor(
    Method method, std::span<const std::vector<double>> buffer,
    const LevelModel& levels, std::vector<uint32_t>* jcodes,
    ByteWriter* j_extras) {
  switch (method) {
    case Method::kVQ:
      return std::make_unique<VqEncodePredictor>(buffer, levels, true, jcodes,
                                                 j_extras);
    case Method::kVQT:
      return std::make_unique<VqEncodePredictor>(buffer, levels, false, jcodes,
                                                 j_extras);
    case Method::kMT:
      return std::make_unique<TimePredictor>("predict_mt");
    case Method::kTI:
      return std::make_unique<TiPredictor>();
    case Method::kLorenzo2D:
      return std::make_unique<Lorenzo2DPredictor>();
    case Method::kBitAdaptive:
      return std::make_unique<TimePredictor>("predict_ba");
    case Method::kAdaptive:
      break;  // callers resolve kAdaptive before reaching the codec
  }
  return nullptr;
}

std::unique_ptr<Predictor> MakeDecodePredictor(
    Method method, const LevelModel& levels,
    const std::vector<uint32_t>& jcodes, ByteReader* j_extras) {
  switch (method) {
    case Method::kVQ:
      return std::make_unique<VqDecodePredictor>(levels, true, jcodes,
                                                 j_extras);
    case Method::kVQT:
      return std::make_unique<VqDecodePredictor>(levels, false, jcodes,
                                                 j_extras);
    case Method::kMT:
      return std::make_unique<TimePredictor>("predict_mt");
    case Method::kTI:
      return std::make_unique<TiPredictor>();
    case Method::kLorenzo2D:
      return std::make_unique<Lorenzo2DPredictor>();
    case Method::kBitAdaptive:
      return std::make_unique<TimePredictor>("predict_ba");
    case Method::kAdaptive:
      break;
  }
  return nullptr;
}

}  // namespace mdz::core::internal
