#ifndef MDZ_CORE_QUALITY_AUDIT_H_
#define MDZ_CORE_QUALITY_AUDIT_H_

// Streaming decompress-and-verify: decodes an archive block by block and
// checks every reconstructed value against the original trajectory and the
// stream's configured absolute error bound. This is the driver behind
// `mdz audit` and the compressor's --audit flag; the accumulators and the
// mdz.quality.v1 serialization live in obs/quality.h (pure math, no decoder
// dependency).
//
// Memory stays bounded: only one decoded snapshot is live at a time, and the
// original is read in place — no flattened copies of either side.

#include <span>

#include "core/mdz.h"
#include "core/trajectory.h"
#include "obs/quality.h"
#include "util/status.h"

namespace mdz::core {

struct AuditOptions {
  // Optional per-block JSONL trace (one line per decoded block). Non-owning;
  // must outlive the audit call.
  obs::QualityTraceSink* trace = nullptr;
  // Feed the global metrics registry (audit/* counters and the
  // audit/rel_error histogram). Requires obs::Enabled().
  bool telemetry = false;
};

// Audits one axis stream against the matching axis of `original`. The stream
// must decode to exactly original.num_snapshots() snapshots of
// original.num_particles() values — a shape mismatch is InvalidArgument (the
// comparison would be meaningless), while undecodable input surfaces the
// decoder's own Corruption status. A bound violation is NOT an error status:
// it is counted in the returned FieldQuality (callers map violations to
// their own verdict, e.g. exit code 5).
Result<obs::FieldQuality> AuditField(std::span<const uint8_t> stream,
                                     const Trajectory& original, int axis,
                                     const AuditOptions& options = {});

// Audits all three axis streams of a compressed trajectory.
Result<obs::QualityReport> AuditTrajectory(
    const CompressedTrajectory& compressed, const Trajectory& original,
    const AuditOptions& options = {});

}  // namespace mdz::core

#endif  // MDZ_CORE_QUALITY_AUDIT_H_
