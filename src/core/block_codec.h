#ifndef MDZ_CORE_BLOCK_CODEC_H_
#define MDZ_CORE_BLOCK_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/mdz.h"
#include "util/status.h"

namespace mdz::core::internal {

// Cross-buffer predictor state. For the paper's methods, the only
// information that flows between buffers is the (decompressed) initial
// snapshot of the whole stream, which the MT predictor uses for the first
// snapshot of every buffer — that is what makes blocks independently
// decodable. The TI extension additionally chains on the previous buffer's
// last decoded snapshot (`prev_last`, maintained for every block), trading
// random access for cross-buffer temporal continuity.
struct PredictorState {
  std::vector<double> initial;    // empty until the first buffer is coded
  std::vector<double> prev_last;  // last decoded snapshot of the prior block

  bool has_initial() const { return !initial.empty(); }
  bool has_prev_last() const { return !prev_last.empty(); }
};

// Level grid used by the VQ predictor (paper Algorithm 1): level j sits at
// mu + lambda * j.
struct LevelModel {
  double mu = 0.0;
  double lambda = 1.0;
  bool valid = false;
};

struct EncodedBlock {
  std::vector<uint8_t> bytes;
  PredictorState end_state;
  size_t escape_count = 0;

  // Pipeline-stage accounting for this block (observability; not part of
  // the stream). huffman_bytes is measured before the dictionary stage;
  // main_lz_bytes + side_lz_bytes plus the block's header/framing bytes sum
  // to bytes.size().
  size_t huffman_bytes = 0;  // Huffman(B) + Huffman(J) output, pre-LZ
  size_t main_lz_bytes = 0;  // dictionary-coded main payload blob
  size_t side_lz_bytes = 0;  // dictionary-coded side channel blob
  // Shannon entropy of the laid-out quantization codes, bits/symbol
  // (escape symbol included). A cheap byproduct of the run-structure
  // histogram the backend already builds.
  double bin_entropy_bits = 0.0;
};

// The fixed prefix of every encoded block: method byte + snapshot count.
struct BlockHeader {
  Method method = Method::kVQ;
  size_t s_count = 0;
};

// Parses and validates the prefix of an encoded block without touching the
// payload. Used to build the random-access seek index (and to detect TI
// chaining) in O(1) per block. Rejects unknown method bytes and — because a
// well-formed encoder never frames an empty buffer — zero-snapshot blocks.
Result<BlockHeader> PeekBlockHeader(std::span<const uint8_t> bytes);

// Reads the level model serialized in a VQ/VQT block's fixed prefix (method
// byte, snapshot count, then mu/lambda as two f64). The model is stored
// verbatim, so this recovers the encoder's grid bit-exactly — what lets an
// appending writer resume a sealed stream byte-identically. Returns an
// invalid (valid == false) model for MT/TI blocks, which carry none.
Result<LevelModel> PeekBlockLevels(std::span<const uint8_t> bytes);

// The compressor's level-model fit (paper: k-means on the first snapshot),
// including the degenerate-data fallback to the identity grid. Shared by
// FieldCompressor::EnsureLevels and the archive writer's append path, which
// refits from a decoded reference when no VQ/VQT block recorded the grid.
LevelModel FitLevelModel(const std::vector<double>& snapshot,
                         const cluster::LevelFitOptions& options);

// Encodes/decodes one buffer (S snapshots x N values) with one of the MDZ
// prediction strategies. Stateless apart from configuration; predictor
// state is threaded through explicitly so the adaptive selector can trial-
// compress the same buffer with several methods from the same entry state.
//
// Internally this is a thin composition of the pipeline stages
// (DESIGN.md "Stage boundary"): a Predictor (core/predictors.h) drives
// per-element predictions, a quant::RowCoder implementation quantizes or
// reconstructs against them, and a codec::CodeBackend turns the laid-out
// codes into the dictionary-coded main payload. Each method is one choice
// of (predictor, quantizer grid, backend); adding an ADP candidate means
// adding a Method value and its composition here.
class BlockCodec {
 public:
  // `abs_eb` is the resolved absolute error bound. `eb_split` is the
  // fraction of that budget granted to the bit-adaptive candidate's
  // quantization grid (Options::eb_split); other methods always spend the
  // whole budget and ignore it. The grid actually used is recorded in the
  // block, so decode never needs the knob.
  BlockCodec(double abs_eb, uint32_t quantization_scale, CodeLayout layout,
             double eb_split = 1.0);

  // Encodes `buffer` with `method`. For VQ/VQT, `levels` must be valid.
  EncodedBlock Encode(Method method,
                      std::span<const std::vector<double>> buffer,
                      const PredictorState& state,
                      const LevelModel& levels) const;

  // Decodes a block produced by Encode. `n` is the per-snapshot value count
  // from the stream header. Appends S decoded snapshots to *out and advances
  // *state exactly as the encoder did.
  Status Decode(std::span<const uint8_t> bytes, size_t n,
                PredictorState* state,
                std::vector<std::vector<double>>* out) const;

  double absolute_error_bound() const { return abs_eb_; }
  uint32_t quantization_scale() const { return scale_; }

 private:
  double abs_eb_;
  uint32_t scale_;
  CodeLayout layout_;
  double eb_split_;
};

}  // namespace mdz::core::internal

#endif  // MDZ_CORE_BLOCK_CODEC_H_
