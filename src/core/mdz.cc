#include "core/mdz.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/block_codec.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/byte_buffer.h"

namespace mdz::core {

namespace {

constexpr uint8_t kFormatVersion = 1;
constexpr char kMagic[4] = {'M', 'D', 'Z', 'F'};

using internal::BlockCodec;
using internal::EncodedBlock;
using internal::LevelModel;
using internal::PredictorState;

// Registry counter name for the per-method block tally.
const char* BlocksCounterName(Method method) {
  switch (method) {
    case Method::kVQ:
      return "compress/blocks_vq";
    case Method::kVQT:
      return "compress/blocks_vqt";
    case Method::kMT:
      return "compress/blocks_mt";
    case Method::kTI:
      return "compress/blocks_ti";
    case Method::kLorenzo2D:
      return "compress/blocks_l2d";
    case Method::kBitAdaptive:
      return "compress/blocks_ba";
    case Method::kAdaptive:
      break;
  }
  return "compress/blocks_unknown";
}

// Slot of a method in the fixed-order trial-size array reported through
// obs::BlockTrace::trial_bytes (VQ, VQT, MT, TI, L2D, BA).
size_t TrialSlot(Method method) {
  switch (method) {
    case Method::kVQ:
      return 0;
    case Method::kVQT:
      return 1;
    case Method::kMT:
      return 2;
    case Method::kTI:
      return 3;
    case Method::kLorenzo2D:
      return 4;
    case Method::kBitAdaptive:
      return 5;
    case Method::kAdaptive:
      break;
  }
  return 0;
}

}  // namespace

bool IsConcreteMethod(Method method) {
  switch (method) {
    case Method::kVQ:
    case Method::kVQT:
    case Method::kMT:
    case Method::kTI:
    case Method::kLorenzo2D:
    case Method::kBitAdaptive:
      return true;
    case Method::kAdaptive:
      break;
  }
  return false;
}

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kVQ:
      return "VQ";
    case Method::kVQT:
      return "VQT";
    case Method::kMT:
      return "MT";
    case Method::kAdaptive:
      return "ADP";
    case Method::kTI:
      return "TI";
    case Method::kLorenzo2D:
      return "L2D";
    case Method::kBitAdaptive:
      return "BA";
  }
  return "Unknown";
}

Status Options::Validate() const {
  if (!(error_bound > 0.0) || !std::isfinite(error_bound)) {
    return Status::InvalidArgument("error_bound must be positive and finite");
  }
  if (buffer_size == 0) {
    return Status::InvalidArgument("buffer_size must be >= 1");
  }
  if (quantization_scale < 4 || quantization_scale > (1u << 20)) {
    return Status::InvalidArgument("quantization_scale out of [4, 2^20]");
  }
  if ((quantization_scale & (quantization_scale - 1)) != 0) {
    return Status::InvalidArgument("quantization_scale must be a power of two");
  }
  if (layout != CodeLayout::kSnapshotMajor &&
      layout != CodeLayout::kParticleMajor) {
    return Status::InvalidArgument("bad code layout");
  }
  if (adaptation_interval == 0) {
    return Status::InvalidArgument("adaptation_interval must be >= 1");
  }
  if (!(eb_split > 0.0) || eb_split > 1.0) {
    return Status::InvalidArgument("eb_split must be in (0, 1]");
  }
  for (size_t i = 0; i < adp_methods.size(); ++i) {
    if (!IsConcreteMethod(adp_methods[i])) {
      return Status::InvalidArgument(
          "adp_methods entries must be concrete methods");
    }
    for (size_t j = 0; j < i; ++j) {
      if (adp_methods[j] == adp_methods[i]) {
        return Status::InvalidArgument("adp_methods entries must be unique");
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FieldCompressor
// ---------------------------------------------------------------------------

struct FieldCompressor::Impl {
  size_t n = 0;
  Options options;

  std::vector<std::vector<double>> buffer;  // pending snapshots
  std::vector<uint8_t> output;
  CompressorStats stats;

  bool header_written = false;
  double abs_eb = 0.0;
  LevelModel levels;
  bool levels_computed = false;
  PredictorState state;

  Method current_method = Method::kMT;  // ADP's committed choice
  size_t buffers_since_adaptation = 0;

  size_t last_block_bytes = 0;
  Method last_block_method = Method::kMT;
  bool finished = false;

  Status EnsureHeader() {
    if (header_written) return Status::OK();
    // Resolve the absolute error bound (value-range mode uses the range of
    // the first buffer, per the paper's batched execution model).
    abs_eb = options.error_bound;
    if (options.error_bound_mode == ErrorBoundMode::kValueRangeRelative) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& snapshot : buffer) {
        for (double v : snapshot) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      const double range = (hi > lo) ? (hi - lo) : 0.0;
      abs_eb = (range > 0.0) ? options.error_bound * range
                             : options.error_bound;
    }

    ByteWriter w;
    w.PutBytes(kMagic, sizeof(kMagic));
    w.Put<uint8_t>(kFormatVersion);
    w.PutVarint(n);
    w.Put<double>(abs_eb);
    w.PutVarint(options.quantization_scale);
    w.Put<uint8_t>(static_cast<uint8_t>(options.layout));
    const std::vector<uint8_t> header = w.TakeBytes();
    output.insert(output.end(), header.begin(), header.end());
    stats.framing_bytes += header.size();
    stats.compressed_bytes += header.size();
    header_written = true;
    return Status::OK();
  }

  void EnsureLevels() {
    if (levels_computed || buffer.empty()) return;
    MDZ_SPAN("level_fit");
    // Paper: the k-means level model is computed once, on (a 10% sample of)
    // the first snapshot of the simulation, and reused afterwards.
    levels = internal::FitLevelModel(buffer[0], options.level_fit);
    levels_computed = true;
  }

  Status FlushBuffer() {
    if (buffer.empty()) return Status::OK();
    MDZ_SPAN_ARGS("flush_buffer", "block", stats.buffers_out, "snapshots",
                  buffer.size());
    MDZ_RETURN_IF_ERROR(EnsureHeader());
    EnsureLevels();

    const BlockCodec codec(abs_eb, options.quantization_scale, options.layout,
                           options.eb_split);

    EncodedBlock chosen;
    Method chosen_method;
    bool adapted = false;
    // Fixed-slot trial sizes: VQ, VQT, MT, TI, L2D, BA (obs::BlockTrace).
    std::array<uint64_t, 6> trial_bytes{};
    if (options.method != Method::kAdaptive) {
      chosen_method = options.method;
      chosen = codec.Encode(chosen_method, buffer, state, levels);
    } else {
      // Evaluate on the first two buffers (buffer 0 cannot expose MT's
      // initial-snapshot predictor, which only kicks in once snapshot 0 is
      // known), then every adaptation_interval buffers.
      const bool evaluate =
          stats.buffers_out <= 1 ||
          buffers_since_adaptation >= options.adaptation_interval;
      if (evaluate) {
        // Trial-compress the candidate strategies from the same entry state
        // and keep the smallest output (paper Section VI-D). The candidate
        // set is Options::adp_methods when given, else the paper's three —
        // TI joins only when explicitly enabled (extension). TI is dropped
        // from either set on buffers too small for its stencil. Each trial
        // reads `buffer`/`state`/`levels` by const reference and writes only
        // its own EncodedBlock, so the trials are independent and may run
        // concurrently; the fixed candidate order with a first-smallest
        // tie-break keeps the winner — and therefore the stream —
        // byte-identical to a serial evaluation.
        std::vector<Method> candidates;
        if (!options.adp_methods.empty()) {
          for (Method m : options.adp_methods) {
            if (m == Method::kTI && buffer.size() <= 2) continue;
            candidates.push_back(m);
          }
          if (candidates.empty()) candidates.push_back(Method::kMT);
        } else {
          candidates = {Method::kVQ, Method::kVQT, Method::kMT};
          if (options.enable_interpolation && buffer.size() > 2) {
            candidates.push_back(Method::kTI);
          }
        }
        std::vector<EncodedBlock> trials(candidates.size());
        const auto encode_trial = [&](size_t k) {
          MDZ_SPAN_ARGS("adp_trial", "method",
                        static_cast<uint64_t>(candidates[k]), "block",
                        stats.buffers_out);
          trials[k] = codec.Encode(candidates[k], buffer, state, levels);
        };
        if (options.pool != nullptr && !options.pool->serial()) {
          options.pool->ParallelFor(0, candidates.size(), encode_trial);
        } else {
          for (size_t k = 0; k < candidates.size(); ++k) encode_trial(k);
        }
        size_t best = 0;
        for (size_t k = 1; k < trials.size(); ++k) {
          if (trials[k].bytes.size() < trials[best].bytes.size()) best = k;
        }
        adapted = true;
        for (size_t k = 0; k < trials.size(); ++k) {
          trial_bytes[TrialSlot(candidates[k])] = trials[k].bytes.size();
        }
        chosen = std::move(trials[best]);
        chosen_method = candidates[best];
        current_method = chosen_method;
        buffers_since_adaptation = 0;
        ++stats.adaptation_runs;
      } else {
        chosen_method = current_method;
        chosen = codec.Encode(chosen_method, buffer, state, levels);
      }
      ++buffers_since_adaptation;
    }

    state = std::move(chosen.end_state);
    ByteWriter framed;
    framed.PutVarint(chosen.bytes.size());
    output.insert(output.end(), framed.bytes().begin(), framed.bytes().end());
    output.insert(output.end(), chosen.bytes.begin(), chosen.bytes.end());

    last_block_bytes = chosen.bytes.size() + framed.size();
    last_block_method = chosen_method;
    stats.escape_count += chosen.escape_count;
    ++stats.buffers_out;
    // Accumulated (not output.size()): TakeOutput may drain the output
    // mid-stream, so the total is tracked independently of the vector.
    stats.compressed_bytes += last_block_bytes;
    stats.current_method = chosen_method;
    switch (chosen_method) {
      case Method::kVQ:
        ++stats.blocks_vq;
        break;
      case Method::kVQT:
        ++stats.blocks_vqt;
        break;
      case Method::kMT:
        ++stats.blocks_mt;
        break;
      case Method::kTI:
        ++stats.blocks_ti;
        break;
      case Method::kLorenzo2D:
        ++stats.blocks_l2d;
        break;
      case Method::kBitAdaptive:
        ++stats.blocks_ba;
        break;
      case Method::kAdaptive:
        break;  // never a concrete block method
    }
    stats.huffman_bytes += chosen.huffman_bytes;
    stats.main_lz_bytes += chosen.main_lz_bytes;
    stats.side_lz_bytes += chosen.side_lz_bytes;
    // Everything in the frame that is not one of the two LZ blobs is
    // framing: length varints, method byte, snapshot count, level model.
    stats.framing_bytes +=
        last_block_bytes - chosen.main_lz_bytes - chosen.side_lz_bytes;

    const size_t s_count = buffer.size();
    if (options.telemetry) {
      if (obs::Enabled()) {
        auto& registry = obs::MetricsRegistry::Global();
        registry.GetCounter("compress/blocks")->Increment();
        registry.GetCounter(BlocksCounterName(chosen_method))->Increment();
        registry.GetCounter("compress/bytes_out")->Add(last_block_bytes);
        registry.GetCounter("compress/escapes")->Add(chosen.escape_count);
        if (adapted) registry.GetCounter("compress/adaptations")->Increment();
      }
      if (options.trace != nullptr) {
        obs::BlockTrace trace;
        trace.axis = options.trace_axis;
        trace.block_index = stats.buffers_out - 1;
        trace.method = MethodName(chosen_method).data();
        trace.snapshots = s_count;
        trace.block_bytes = last_block_bytes;
        trace.escape_count = chosen.escape_count;
        trace.bin_entropy_bits = chosen.bin_entropy_bits;
        trace.adapted = adapted;
        trace.trial_bytes = trial_bytes;
        options.trace->Record(trace);
      }
    }
    buffer.clear();
    return Status::OK();
  }
};

FieldCompressor::FieldCompressor() : impl_(new Impl()) {}
FieldCompressor::~FieldCompressor() = default;

Result<std::unique_ptr<FieldCompressor>> FieldCompressor::Create(
    size_t num_particles, const Options& options) {
  MDZ_RETURN_IF_ERROR(options.Validate());
  if (num_particles == 0) {
    return Status::InvalidArgument("num_particles must be >= 1");
  }
  auto compressor = std::unique_ptr<FieldCompressor>(new FieldCompressor());
  compressor->impl_->n = num_particles;
  compressor->impl_->options = options;
  // One switch for callers: asking for telemetry on a compressor lights up
  // the process-wide instrumentation (spans, pool gauges) as well.
  if (options.telemetry) obs::SetEnabled(true);
  return compressor;
}

Result<std::unique_ptr<FieldCompressor>> FieldCompressor::Resume(
    size_t num_particles, const Options& options, const ResumeState& state) {
  MDZ_ASSIGN_OR_RETURN(auto compressor, Create(num_particles, options));
  Impl& impl = *compressor->impl_;
  if (!(state.abs_eb > 0.0) || !std::isfinite(state.abs_eb)) {
    return Status::InvalidArgument("resume state has no resolved error bound");
  }
  if (state.buffers_out == 0) {
    return Status::InvalidArgument("nothing to resume: stream has no blocks");
  }
  if (state.initial.size() != num_particles ||
      state.prev_last.size() != num_particles) {
    return Status::InvalidArgument(
        "resume predictor snapshots must have num_particles values");
  }
  // The stream header already exists on disk; the resolved bound is final
  // (value-range bounds froze on the original first buffer).
  impl.header_written = true;
  impl.abs_eb = state.abs_eb;
  if (state.has_levels) {
    impl.levels.mu = state.level_mu;
    impl.levels.lambda = state.level_lambda;
    impl.levels.valid = true;
    impl.levels_computed = true;
  }
  impl.state.initial = state.initial;
  impl.state.prev_last = state.prev_last;
  impl.current_method = state.current_method;
  impl.last_block_method = state.current_method;
  impl.stats.buffers_out = state.buffers_out;
  impl.stats.snapshots_in = state.snapshots_in;
  // Replay ADP's evaluation schedule up to the resume point: the counter is
  // a pure function of the block count and the interval (FlushBuffer zeroes
  // it on every evaluation, then increments unconditionally), so the resumed
  // compressor re-evaluates on exactly the buffers the original would have.
  size_t since = 0;
  for (size_t b = 0; b < state.buffers_out; ++b) {
    if (b <= 1 || since >= options.adaptation_interval) since = 0;
    ++since;
  }
  impl.buffers_since_adaptation = since;
  return compressor;
}

Status FieldCompressor::Append(std::span<const double> snapshot) {
  Impl& impl = *impl_;
  if (impl.finished) {
    return Status::FailedPrecondition("Append after Finish");
  }
  if (snapshot.size() != impl.n) {
    return Status::InvalidArgument("snapshot size != num_particles");
  }
  // A nan/inf would flow through the predictor into the quantizer and
  // silently void the error bound for every sample in the block; reject the
  // snapshot instead, and leave a trail in the audit counters.
  size_t nonfinite = 0;
  for (const double v : snapshot) {
    if (!std::isfinite(v)) ++nonfinite;
  }
  if (nonfinite > 0) {
    MDZ_COUNTER_ADD("audit/nonfinite_inputs", nonfinite);
    return Status::InvalidArgument(
        "snapshot contains " + std::to_string(nonfinite) +
        " non-finite value(s); the error bound cannot hold");
  }
  impl.buffer.emplace_back(snapshot.begin(), snapshot.end());
  if (impl.buffer.size() >= impl.options.buffer_size) {
    MDZ_RETURN_IF_ERROR(impl.FlushBuffer());
  }
  // Stats count only successfully accepted snapshots: when a flush fails the
  // counters stay put, so snapshots_in/raw_bytes never overcount on error.
  ++impl.stats.snapshots_in;
  impl.stats.raw_bytes += snapshot.size() * sizeof(double);
  return Status::OK();
}

Status FieldCompressor::Finish() {
  Impl& impl = *impl_;
  if (impl.finished) {
    return Status::FailedPrecondition("Finish called twice");
  }
  MDZ_RETURN_IF_ERROR(impl.FlushBuffer());
  MDZ_RETURN_IF_ERROR(impl.EnsureHeader());  // empty stream still gets header
  impl.finished = true;
  if (impl.options.telemetry && obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("compress/snapshots_in")->Add(impl.stats.snapshots_in);
    registry.GetCounter("compress/bytes_raw")->Add(impl.stats.raw_bytes);
    registry.GetCounter("compress/streams")->Increment();
  }
  return Status::OK();
}

const std::vector<uint8_t>& FieldCompressor::output() const {
  return impl_->output;
}

std::vector<uint8_t> FieldCompressor::TakeOutput() {
  return std::move(impl_->output);
}

const CompressorStats& FieldCompressor::stats() const { return impl_->stats; }

size_t FieldCompressor::last_block_bytes() const {
  return impl_->last_block_bytes;
}

Method FieldCompressor::last_block_method() const {
  return impl_->last_block_method;
}

// ---------------------------------------------------------------------------
// FieldDecompressor
// ---------------------------------------------------------------------------

struct FieldDecompressor::Impl {
  std::span<const uint8_t> data;
  size_t pos = 0;

  size_t n = 0;
  double abs_eb = 0.0;
  uint32_t scale = 0;
  CodeLayout layout = CodeLayout::kParticleMajor;

  PredictorState state;
  std::vector<std::vector<double>> pending;  // decoded, not yet handed out
  size_t pending_pos = 0;
  DecompressorStats dstats;

  // Lazily built random-access index.
  struct BlockEntry {
    size_t offset;          // byte offset of the framed block
    size_t frame_bytes;     // framing varint + payload
    size_t first_snapshot;  // global index of its first snapshot
    size_t s_count;
    Method method;
  };
  std::vector<BlockEntry> index;
  bool index_built = false;
  // True if any block uses the TI method, which chains on the previous
  // buffer: random access then degrades to sequential decoding.
  bool chained = false;
  size_t header_end = 0;  // position right after the stream header

  Status ParseHeader() {
    MDZ_ASSIGN_OR_RETURN(const FieldStreamHeader header,
                         ParseFieldStreamHeader(data));
    n = header.num_particles;
    abs_eb = header.abs_eb;
    scale = header.quantization_scale;
    layout = header.layout;
    pos = header.header_bytes;
    header_end = header.header_bytes;
    return Status::OK();
  }

  // Scans block frames (without decoding payloads) to build the seek index.
  Status BuildIndex() {
    if (index_built) return Status::OK();
    // Start from scratch on every (re)build: a failed scan — e.g. a
    // truncated final frame — must not leave partial entries behind, or a
    // retry would append duplicates.
    index.clear();
    chained = false;
    size_t offset = header_end;
    size_t snapshot = 0;
    while (offset < data.size()) {
      ByteReader r(data.subspan(offset));
      std::span<const uint8_t> block;
      MDZ_RETURN_IF_ERROR(r.GetBlob(&block));
      MDZ_ASSIGN_OR_RETURN(const internal::BlockHeader header,
                           internal::PeekBlockHeader(block));
      if (header.method == Method::kTI) chained = true;
      index.push_back(
          {offset, r.position(), snapshot, header.s_count, header.method});
      snapshot += header.s_count;
      offset += r.position();
    }
    index_built = true;
    return Status::OK();
  }

  // Records one decoded block payload. Not thread-safe: the parallel
  // DecodeAll path aggregates its workers' blocks from the owner thread.
  void AccountDecode(size_t frame_bytes, size_t snapshots) {
    ++dstats.blocks_decoded;
    dstats.snapshots_decoded += snapshots;
    dstats.bytes_in += frame_bytes;
    dstats.bytes_out += snapshots * n * sizeof(double);
    if (obs::Enabled()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("decompress/blocks")->Increment();
      registry.GetCounter("decompress/snapshots")->Add(snapshots);
      registry.GetCounter("decompress/bytes_in")->Add(frame_bytes);
      registry.GetCounter("decompress/bytes_out")
          ->Add(snapshots * n * sizeof(double));
    }
  }

  // Funnel for statuses leaving the public API: tallies Corruption errors so
  // callers can see how often a stream failed validation.
  Status Track(Status s) {
    if (!s.ok() && s.code() == StatusCode::kCorruption) {
      ++dstats.corruption_errors;
      MDZ_COUNTER_ADD("decompress/corruption_errors", 1);
    }
    return s;
  }

  // Decodes the block at index[i] into `pending` (clears it first).
  // Block 0 is special: it was encoded before snapshot 0 existed, so it must
  // always be decoded with an empty predictor state (re-decoding it with
  // `initial` set would flip MT's first-snapshot branch).
  Status DecodeBlockAt(size_t i) {
    ByteReader r(data.subspan(index[i].offset));
    std::span<const uint8_t> block;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&block));
    const BlockCodec codec(abs_eb, scale, layout);
    pending.clear();
    pending_pos = 0;
    if (i == 0) {
      PredictorState fresh;
      MDZ_RETURN_IF_ERROR(codec.Decode(block, n, &fresh, &pending));
      if (!state.has_initial()) state = std::move(fresh);
    } else {
      MDZ_RETURN_IF_ERROR(codec.Decode(block, n, &state, &pending));
    }
    if (pending.empty()) {
      // Defense in depth: Next() hands out pending[pending_pos] right after
      // a successful decode, so an empty decode must be an error, never a
      // silent success.
      return Status::Corruption("empty block in stream");
    }
    AccountDecode(index[i].frame_bytes, pending.size());
    return Status::OK();
  }

  // Ensures state.initial is populated (decodes the first block once).
  Status EnsureInitialState() {
    if (state.has_initial()) return Status::OK();
    MDZ_RETURN_IF_ERROR(BuildIndex());
    if (index.empty()) return Status::OutOfRange("empty stream");
    std::vector<std::vector<double>> scratch;
    ByteReader r(data.subspan(index[0].offset));
    std::span<const uint8_t> block;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&block));
    const BlockCodec codec(abs_eb, scale, layout);
    MDZ_RETURN_IF_ERROR(codec.Decode(block, n, &state, &scratch));
    AccountDecode(index[0].frame_bytes, scratch.size());
    return Status::OK();
  }

  // Decodes the next block into `pending`; returns false at end of stream.
  Result<bool> DecodeNextBlock() {
    if (pos >= data.size()) return false;
    ByteReader r(data.subspan(pos));
    std::span<const uint8_t> block;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&block));
    const size_t frame_bytes = r.position();
    pos += frame_bytes;

    const BlockCodec codec(abs_eb, scale, layout);
    pending.clear();
    pending_pos = 0;
    MDZ_RETURN_IF_ERROR(codec.Decode(block, n, &state, &pending));
    if (pending.empty()) {
      // A block that decodes to zero snapshots would make Next() index past
      // the end of `pending`; reject it here instead.
      return Status::Corruption("empty block in stream");
    }
    AccountDecode(frame_bytes, pending.size());
    return true;
  }
};

FieldDecompressor::FieldDecompressor() : impl_(new Impl()) {}
FieldDecompressor::~FieldDecompressor() = default;

Result<std::unique_ptr<FieldDecompressor>> FieldDecompressor::Open(
    std::span<const uint8_t> data) {
  auto decompressor =
      std::unique_ptr<FieldDecompressor>(new FieldDecompressor());
  decompressor->impl_->data = data;
  MDZ_RETURN_IF_ERROR(decompressor->impl_->ParseHeader());
  return decompressor;
}

size_t FieldDecompressor::num_particles() const { return impl_->n; }

double FieldDecompressor::absolute_error_bound() const {
  return impl_->abs_eb;
}

const DecompressorStats& FieldDecompressor::stats() const {
  return impl_->dstats;
}

Result<size_t> FieldDecompressor::CountSnapshots() {
  MDZ_RETURN_IF_ERROR(impl_->Track(impl_->BuildIndex()));
  if (impl_->index.empty()) return size_t{0};
  const auto& last = impl_->index.back();
  return last.first_snapshot + last.s_count;
}

Result<std::vector<FieldDecompressor::BlockInfo>>
FieldDecompressor::ListBlocks() {
  MDZ_RETURN_IF_ERROR(impl_->Track(impl_->BuildIndex()));
  std::vector<BlockInfo> out;
  out.reserve(impl_->index.size());
  for (const auto& entry : impl_->index) {
    out.push_back({entry.offset, entry.frame_bytes, entry.first_snapshot,
                   entry.s_count, entry.method});
  }
  return out;
}

Status FieldDecompressor::SeekToSnapshot(size_t index) {
  Impl& impl = *impl_;
  MDZ_RETURN_IF_ERROR(impl.Track(impl.BuildIndex()));
  MDZ_RETURN_IF_ERROR(impl.Track(impl.EnsureInitialState()));

  // Binary search for the block containing `index`.
  size_t lo = 0, hi = impl.index.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (impl.index[mid].first_snapshot <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (impl.index.empty() ||
      index >= impl.index[lo].first_snapshot + impl.index[lo].s_count) {
    return Status::OutOfRange("snapshot index beyond end of stream");
  }
  if (impl.chained) {
    // TI blocks chain on the previous buffer: replay blocks 0..lo with a
    // fresh state (correct but sequential — the price of interpolation).
    impl.state = internal::PredictorState();
    for (size_t k = 0; k < lo; ++k) {
      MDZ_RETURN_IF_ERROR(impl.Track(impl.DecodeBlockAt(k)));
    }
  }
  MDZ_RETURN_IF_ERROR(impl.Track(impl.DecodeBlockAt(lo)));
  impl.pending_pos = index - impl.index[lo].first_snapshot;
  // Continue sequential reads after the block.
  impl.pos = (lo + 1 < impl.index.size()) ? impl.index[lo + 1].offset
                                          : impl.data.size();
  return Status::OK();
}

Result<bool> FieldDecompressor::Next(std::vector<double>* out) {
  Impl& impl = *impl_;
  if (impl.pending_pos >= impl.pending.size()) {
    auto more = impl.DecodeNextBlock();
    if (!more.ok()) return impl.Track(more.status());
    if (!*more) return false;
  }
  *out = std::move(impl.pending[impl.pending_pos++]);
  return true;
}

Result<std::vector<std::vector<double>>> FieldDecompressor::DecodeAll(
    ThreadPool* pool) {
  MDZ_SPAN("decode_all");
  Impl& impl = *impl_;
  MDZ_RETURN_IF_ERROR(impl.Track(impl.BuildIndex()));

  // Restart any in-progress sequential read: DecodeAll always yields the
  // whole stream.
  impl.pending.clear();
  impl.pending_pos = 0;
  impl.state = PredictorState();
  impl.pos = impl.header_end;

  std::vector<std::vector<double>> out;
  const size_t blocks = impl.index.size();
  if (blocks == 0) return out;

  const auto& last = impl.index.back();
  const size_t total = last.first_snapshot + last.s_count;
  // TI blocks chain on the previous buffer's last snapshot, so they only
  // decode correctly in stream order. The value-count cap mirrors the block
  // codec's own limit: a corrupt index that claims an absurd snapshot total
  // must not trigger a giant up-front allocation — the incremental
  // sequential path reports the corruption without it.
  const bool sequential = impl.chained || pool == nullptr || pool->serial() ||
                          total > (1ull << 31) / impl.n;
  if (sequential) {
    while (true) {
      auto more = impl.DecodeNextBlock();
      if (!more.ok()) return impl.Track(more.status());
      if (!*more) break;
      for (auto& s : impl.pending) out.push_back(std::move(s));
      impl.pending.clear();
      impl.pending_pos = 0;
    }
    return out;
  }

  // Non-chained streams: every block is independently decodable given the
  // stream's initial snapshot (paper Section VI — what makes random access
  // work also makes block-parallel decoding work). Decode block 0 first to
  // seed the MT predictor state, then fan the rest out on the pool.
  MDZ_RETURN_IF_ERROR(impl.Track(impl.DecodeBlockAt(0)));
  out.resize(total);
  for (size_t k = 0; k < impl.pending.size(); ++k) {
    out[k] = std::move(impl.pending[k]);
  }
  impl.pending.clear();

  const std::vector<double> initial = impl.state.initial;
  std::vector<Status> statuses(blocks);
  pool->ParallelFor(1, blocks, [&](size_t b) {
    statuses[b] = [&]() -> Status {
      ByteReader r(impl.data.subspan(impl.index[b].offset));
      std::span<const uint8_t> block;
      MDZ_RETURN_IF_ERROR(r.GetBlob(&block));
      const BlockCodec codec(impl.abs_eb, impl.scale, impl.layout);
      PredictorState local;
      local.initial = initial;  // per-task copy; blocks share no state
      std::vector<std::vector<double>> decoded;
      MDZ_RETURN_IF_ERROR(codec.Decode(block, impl.n, &local, &decoded));
      if (decoded.size() != impl.index[b].s_count) {
        return Status::Corruption("block decoded to unexpected snapshot count");
      }
      for (size_t k = 0; k < decoded.size(); ++k) {
        out[impl.index[b].first_snapshot + k] = std::move(decoded[k]);
      }
      return Status::OK();
    }();
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return impl.Track(s);
  }
  // Worker tasks don't touch dstats (AccountDecode is not thread-safe);
  // settle their blocks here from the owner thread instead.
  for (size_t b = 1; b < blocks; ++b) {
    impl.AccountDecode(impl.index[b].frame_bytes, impl.index[b].s_count);
  }

  // Leave the decompressor at end of stream for subsequent Next() calls.
  impl.pos = impl.data.size();
  return out;
}

Result<FieldStreamHeader> ParseFieldStreamHeader(std::span<const uint8_t> data) {
  ByteReader r(data);
  char magic[4];
  MDZ_RETURN_IF_ERROR(r.GetBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad MDZ magic");
  }
  uint8_t version = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&version));
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported MDZ format version");
  }
  FieldStreamHeader header;
  uint64_t n64 = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&n64));
  if (n64 == 0 || n64 > (1ull << 31)) {
    return Status::Corruption("bad particle count in header");
  }
  header.num_particles = n64;
  MDZ_RETURN_IF_ERROR(r.Get(&header.abs_eb));
  if (!(header.abs_eb > 0.0) || !std::isfinite(header.abs_eb)) {
    return Status::Corruption("bad error bound in header");
  }
  uint64_t scale64 = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&scale64));
  if (scale64 < 4 || scale64 > (1u << 20)) {
    return Status::Corruption("bad quantization scale in header");
  }
  header.quantization_scale = static_cast<uint32_t>(scale64);
  uint8_t layout_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&layout_byte));
  if (layout_byte != 1 && layout_byte != 2) {
    return Status::Corruption("bad code layout in header");
  }
  header.layout = static_cast<CodeLayout>(layout_byte);
  header.header_bytes = r.position();
  return header;
}

// ---------------------------------------------------------------------------
// One-shot helpers
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> CompressField(
    const std::vector<std::vector<double>>& snapshots, const Options& options) {
  if (snapshots.empty()) {
    return Status::InvalidArgument("no snapshots to compress");
  }
  MDZ_ASSIGN_OR_RETURN(auto compressor,
                       FieldCompressor::Create(snapshots[0].size(), options));
  for (const auto& snapshot : snapshots) {
    MDZ_RETURN_IF_ERROR(compressor->Append(snapshot));
  }
  MDZ_RETURN_IF_ERROR(compressor->Finish());
  return compressor->TakeOutput();
}

Result<std::vector<std::vector<double>>> DecompressField(
    std::span<const uint8_t> data) {
  MDZ_ASSIGN_OR_RETURN(auto decompressor, FieldDecompressor::Open(data));
  std::vector<std::vector<double>> snapshots;
  std::vector<double> snapshot;
  while (true) {
    MDZ_ASSIGN_OR_RETURN(const bool more, decompressor->Next(&snapshot));
    if (!more) break;
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

Result<CompressedTrajectory> CompressTrajectory(const Trajectory& trajectory,
                                                const Options& options) {
  if (trajectory.num_snapshots() == 0) {
    return Status::InvalidArgument("empty trajectory");
  }
  CompressedTrajectory out;
  for (int axis = 0; axis < 3; ++axis) {
    MDZ_ASSIGN_OR_RETURN(
        auto compressor,
        FieldCompressor::Create(trajectory.num_particles(), options));
    for (const Snapshot& s : trajectory.snapshots) {
      MDZ_RETURN_IF_ERROR(compressor->Append(s.axes[axis]));
    }
    MDZ_RETURN_IF_ERROR(compressor->Finish());
    out.axes[axis] = compressor->TakeOutput();
  }
  return out;
}

Result<Trajectory> DecompressTrajectory(
    const CompressedTrajectory& compressed) {
  Trajectory out;
  for (int axis = 0; axis < 3; ++axis) {
    MDZ_ASSIGN_OR_RETURN(auto snapshots, DecompressField(compressed.axes[axis]));
    if (axis == 0) {
      out.snapshots.resize(snapshots.size());
    } else if (snapshots.size() != out.snapshots.size()) {
      return Status::Corruption("axis streams have different snapshot counts");
    }
    for (size_t s = 0; s < snapshots.size(); ++s) {
      out.snapshots[s].axes[axis] = std::move(snapshots[s]);
    }
  }
  return out;
}

}  // namespace mdz::core
