// NEON (AArch64 Advanced SIMD) variant of the block-codec kernels. NEON is
// baseline on AArch64 so no per-function target attributes are needed. The
// same byte-identity rules as the AVX2 variant apply (see
// block_kernels_avx2.cc and docs/KERNELS.md): vrndnq_f64 is
// round-half-even, so exact .5 ties are pushed away from zero to match
// llround/std::round; products and sums keep the scalar association (no
// vfma).

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

#include "core/block_kernels.h"

namespace mdz::core::internal {

namespace {

// Round-half-away-from-zero for |x| < 2^52 (llround/std::round semantics).
inline float64x2_t RoundHalfAway(float64x2_t x) {
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t rn = vrndnq_f64(x);  // round-half-even
  const float64x2_t residue = vsubq_f64(x, rn);
  const uint64x2_t up =
      vandq_u64(vceqq_f64(residue, half), vcgtq_f64(x, zero));
  const uint64x2_t down =
      vandq_u64(vceqq_f64(residue, vnegq_f64(half)), vcltq_f64(x, zero));
  rn = vaddq_f64(
      rn, vreinterpretq_f64_u64(vandq_u64(up, vreinterpretq_u64_f64(one))));
  return vsubq_f64(
      rn, vreinterpretq_f64_u64(vandq_u64(down, vreinterpretq_u64_f64(one))));
}

inline float64x2_t Blend(float64x2_t if_false, float64x2_t if_true,
                         uint64x2_t mask) {
  return vbslq_f64(mask, if_true, if_false);
}

void QuantizeRowNeon(const quant::LinearQuantizer& q, const double* values,
                     const double* preds, size_t n, uint32_t* codes,
                     double* decoded) {
  const double eb = q.error_bound();
  const float64x2_t v_inv2eb = vdupq_n_f64(q.inv_two_eb());
  const float64x2_t v_two_eb = vdupq_n_f64(2.0 * eb);
  const float64x2_t v_eb = vdupq_n_f64(eb);
  const float64x2_t v_limit =
      vdupq_n_f64(static_cast<double>(q.radius()) - 1.0);
  const int32_t radius = static_cast<int32_t>(q.radius());

  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(values + i);
    const float64x2_t p = vld1q_f64(preds + i);
    const float64x2_t scaled = vmulq_f64(vsubq_f64(v, p), v_inv2eb);
    // Scalar: escape unless |scaled| < radius-1 (NaN compares false here,
    // matching the scalar !(fabs < limit) escape).
    const uint64x2_t in_range = vcltq_f64(vabsq_f64(scaled), v_limit);
    const float64x2_t qd = RoundHalfAway(scaled);
    const float64x2_t recon = vaddq_f64(p, vmulq_f64(v_two_eb, qd));
    // Scalar: escape if fabs(recon - value) > eb; NaN keeps.
    const uint64x2_t err_bad = vcgtq_f64(vabsq_f64(vsubq_f64(recon, v)), v_eb);
    const uint64x2_t keep = vbicq_u64(in_range, err_bad);

    vst1q_f64(decoded + i, Blend(v, recon, keep));
    // Lane-wise convert (values are integral and within int32 range when
    // kept; escape lanes are zeroed before conversion).
    const float64x2_t qd_safe = vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(qd), keep));
    const int64x2_t qi = vcvtq_s64_f64(qd_safe);
    const uint64x2_t code64 = vandq_u64(
        vreinterpretq_u64_s64(
            vaddq_s64(qi, vdupq_n_s64(static_cast<int64_t>(radius)))),
        keep);
    codes[i] = static_cast<uint32_t>(vgetq_lane_u64(code64, 0));
    codes[i + 1] = static_cast<uint32_t>(vgetq_lane_u64(code64, 1));
  }
  for (; i < n; ++i) {
    codes[i] = q.Encode(values[i], preds[i], &decoded[i]);
  }
}

bool DequantizeRowNeon(const quant::LinearQuantizer& q, const uint32_t* codes,
                       const double* preds, size_t n, double* decoded) {
  const uint32_t scale = q.scale();
  const float64x2_t v_two_eb = vdupq_n_f64(2.0 * q.error_bound());
  const int64_t radius = static_cast<int64_t>(q.radius());

  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32_t c0 = codes[i];
    const uint32_t c1 = codes[i + 1];
    if (c0 == 0 || c0 >= scale || c1 == 0 || c1 >= scale) return false;
    const int64x2_t qi = {static_cast<int64_t>(c0) - radius,
                          static_cast<int64_t>(c1) - radius};
    const float64x2_t qd = vcvtq_f64_s64(qi);
    const float64x2_t p = vld1q_f64(preds + i);
    vst1q_f64(decoded + i, vaddq_f64(p, vmulq_f64(v_two_eb, qd)));
  }
  for (; i < n; ++i) {
    const uint32_t code = codes[i];
    if (code == 0 || code >= scale) return false;
    decoded[i] = q.Decode(code, preds[i]);
  }
  return true;
}

void VqPredictNeon(const double* values, size_t n, double mu, double lambda,
                   double* levels_d, double* preds) {
  const float64x2_t v_mu = vdupq_n_f64(mu);
  const float64x2_t v_lambda = vdupq_n_f64(lambda);
  const float64x2_t v_max = vdupq_n_f64(kMaxLevel);
  const float64x2_t v_negmax = vdupq_n_f64(-kMaxLevel);

  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(values + i);
    const float64x2_t t = vdivq_f64(vsubq_f64(v, v_mu), v_lambda);
    // RoundHalfAway's tie adjustment normalizes -0.0 to +0.0, but
    // std::round keeps the sign of zero (round(-0.3) == -0.0); OR the
    // operand's sign back in. Nonzero results already carry it.
    const float64x2_t l = vreinterpretq_f64_u64(vorrq_u64(
        vreinterpretq_u64_f64(RoundHalfAway(t)),
        vandq_u64(vreinterpretq_u64_f64(t),
                  vdupq_n_u64(0x8000000000000000ull))));
    // Scalar clamp: !(l > -kMaxLevel) -> -kMaxLevel (catches NaN), then
    // !(l < kMaxLevel) -> kMaxLevel.
    const uint64x2_t gt = vcgtq_f64(l, v_negmax);
    const float64x2_t lo = Blend(v_negmax, l, gt);
    const uint64x2_t lt = vcltq_f64(lo, v_max);
    const float64x2_t clamped = Blend(v_max, lo, lt);
    vst1q_f64(levels_d + i, clamped);
    vst1q_f64(preds + i, vaddq_f64(v_mu, vmulq_f64(v_lambda, clamped)));
  }
  for (; i < n; ++i) {
    double l = std::round((values[i] - mu) / lambda);
    if (!(l > -kMaxLevel)) {
      l = -kMaxLevel;
    } else if (!(l < kMaxLevel)) {
      l = kMaxLevel;
    }
    levels_d[i] = l;
    preds[i] = mu + lambda * l;
  }
}

// 4x4 u32 tiles via vld4q (structure-of-arrays load is a transpose).
void TransposeNeon(const uint32_t* in, size_t rows, size_t cols,
                   uint32_t* out) {
  const size_t rows_full = rows & ~size_t{3};
  const size_t cols_full = cols & ~size_t{3};
  for (size_t r = 0; r < rows_full; r += 4) {
    for (size_t c = 0; c < cols_full; c += 4) {
      uint32x4_t q0 = vld1q_u32(in + (r + 0) * cols + c);
      uint32x4_t q1 = vld1q_u32(in + (r + 1) * cols + c);
      uint32x4_t q2 = vld1q_u32(in + (r + 2) * cols + c);
      uint32x4_t q3 = vld1q_u32(in + (r + 3) * cols + c);
      const uint32x4x2_t t01 = vtrnq_u32(q0, q1);
      const uint32x4x2_t t23 = vtrnq_u32(q2, q3);
      const uint32x4_t o0 = vcombine_u32(vget_low_u32(t01.val[0]),
                                         vget_low_u32(t23.val[0]));
      const uint32x4_t o1 = vcombine_u32(vget_low_u32(t01.val[1]),
                                         vget_low_u32(t23.val[1]));
      const uint32x4_t o2 = vcombine_u32(vget_high_u32(t01.val[0]),
                                         vget_high_u32(t23.val[0]));
      const uint32x4_t o3 = vcombine_u32(vget_high_u32(t01.val[1]),
                                         vget_high_u32(t23.val[1]));
      vst1q_u32(out + (c + 0) * rows + r, o0);
      vst1q_u32(out + (c + 1) * rows + r, o1);
      vst1q_u32(out + (c + 2) * rows + r, o2);
      vst1q_u32(out + (c + 3) * rows + r, o3);
    }
  }
  for (size_t r = rows_full; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
  }
  for (size_t r = 0; r < rows_full; ++r) {
    for (size_t c = cols_full; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

}  // namespace

const BlockKernels& NeonBlockKernels() {
  static const BlockKernels kNeon = {
      "neon",           util::SimdVariant::kNeon,
      &QuantizeRowNeon, &DequantizeRowNeon,
      &VqPredictNeon,   &TransposeNeon,
  };
  return kNeon;
}

}  // namespace mdz::core::internal

#endif  // __aarch64__
