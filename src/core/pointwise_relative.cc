#include "core/pointwise_relative.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "codec/lz.h"
#include "util/byte_buffer.h"

namespace mdz::core {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'Z', 'P'};

// Per-value 2-bit tag packed four to a byte: 0 = positive, 1 = negative,
// 2 = exact zero (or subnormal treated as zero).
enum Tag : uint8_t { kPositive = 0, kNegative = 1, kZero = 2 };

}  // namespace

Result<std::vector<uint8_t>> CompressFieldPointwiseRelative(
    const std::vector<std::vector<double>>& snapshots, double rel_bound,
    const Options& base) {
  if (snapshots.empty() || snapshots[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  if (!(rel_bound > 0.0) || rel_bound >= 1.0) {
    return Status::InvalidArgument("rel_bound must be in (0, 1)");
  }
  const size_t n = snapshots[0].size();

  // Transform to sign tags + log magnitudes. Zeros keep a placeholder log
  // value (the running mean keeps the log field smooth for the predictor).
  std::vector<uint8_t> tags;
  tags.reserve(snapshots.size() * n);
  std::vector<std::vector<double>> logs(snapshots.size(),
                                        std::vector<double>(n));
  double placeholder = 0.0;
  bool have_placeholder = false;
  for (size_t s = 0; s < snapshots.size(); ++s) {
    if (snapshots[s].size() != n) {
      return Status::InvalidArgument("ragged field");
    }
    for (size_t i = 0; i < n; ++i) {
      const double d = snapshots[s][i];
      const double mag = std::fabs(d);
      if (!(mag >= std::numeric_limits<double>::min()) ||
          !std::isfinite(d)) {
        tags.push_back(kZero);
        logs[s][i] = have_placeholder ? placeholder : 0.0;
        continue;
      }
      tags.push_back(std::signbit(d) ? kNegative : kPositive);
      logs[s][i] = std::log(mag);
      if (!have_placeholder) {
        placeholder = logs[s][i];
        have_placeholder = true;
      }
    }
  }

  Options options = base;
  options.error_bound_mode = ErrorBoundMode::kAbsolute;
  options.error_bound = std::log1p(rel_bound);
  MDZ_ASSIGN_OR_RETURN(const std::vector<uint8_t> log_stream,
                       CompressField(logs, options));

  // Pack tags 4 per byte and LZ the (usually constant) result.
  std::vector<uint8_t> packed((tags.size() + 3) / 4, 0);
  for (size_t i = 0; i < tags.size(); ++i) {
    packed[i / 4] |= static_cast<uint8_t>(tags[i] << (2 * (i % 4)));
  }
  const std::vector<uint8_t> tag_stream = codec::LzCompress(packed);

  ByteWriter out;
  out.PutBytes(kMagic, sizeof(kMagic));
  out.Put<double>(rel_bound);
  out.PutVarint(snapshots.size());
  out.PutVarint(n);
  out.PutBlob(tag_stream);
  out.PutBlob(log_stream);
  return out.TakeBytes();
}

Result<std::vector<std::vector<double>>> DecompressFieldPointwiseRelative(
    std::span<const uint8_t> data) {
  ByteReader r(data);
  char magic[4];
  MDZ_RETURN_IF_ERROR(r.GetBytes(magic, 4));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad pointwise-relative magic");
  }
  double rel_bound = 0.0;
  MDZ_RETURN_IF_ERROR(r.Get(&rel_bound));
  uint64_t m = 0, n = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&m));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&n));
  if (m == 0 || n == 0 || m > (1ull << 31) || n > (1ull << 31) ||
      m * n > (1ull << 31)) {
    return Status::Corruption("bad dimensions");
  }
  std::span<const uint8_t> tag_blob, log_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&tag_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&log_blob));

  std::vector<uint8_t> packed;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(tag_blob, &packed));
  if (packed.size() != (m * n + 3) / 4) {
    return Status::Corruption("tag stream size mismatch");
  }
  MDZ_ASSIGN_OR_RETURN(auto logs, DecompressField(log_blob));
  if (logs.size() != m || (m > 0 && logs[0].size() != n)) {
    return Status::Corruption("log stream dimensions mismatch");
  }

  std::vector<std::vector<double>> out(m, std::vector<double>(n));
  size_t idx = 0;
  for (size_t s = 0; s < m; ++s) {
    for (size_t i = 0; i < n; ++i, ++idx) {
      const uint8_t tag = (packed[idx / 4] >> (2 * (idx % 4))) & 3;
      if (tag == kZero) {
        out[s][i] = 0.0;
      } else if (tag == kNegative) {
        out[s][i] = -std::exp(logs[s][i]);
      } else {
        out[s][i] = std::exp(logs[s][i]);
      }
    }
  }
  return out;
}

}  // namespace mdz::core
