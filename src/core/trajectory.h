#ifndef MDZ_CORE_TRAJECTORY_H_
#define MDZ_CORE_TRAJECTORY_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace mdz::core {

// In-memory particle trajectory: M snapshots x N particles x 3 axes.
// This is the exchange format between the dataset generators, the
// compressors, and the analysis routines. Positions are stored per snapshot,
// per axis (structure-of-arrays within a snapshot) because all compressors in
// this library process one axis at a time, as in the paper.
struct Snapshot {
  std::array<std::vector<double>, 3> axes;  // x, y, z

  size_t num_particles() const { return axes[0].size(); }
};

struct Trajectory {
  std::string name;
  std::vector<Snapshot> snapshots;
  // Periodic box lengths (0 if non-periodic); used by RDF analysis.
  std::array<double, 3> box = {0.0, 0.0, 0.0};

  size_t num_snapshots() const { return snapshots.size(); }
  size_t num_particles() const {
    return snapshots.empty() ? 0 : snapshots[0].num_particles();
  }
  size_t num_values() const {
    return num_snapshots() * num_particles() * 3;
  }
  size_t raw_bytes() const { return num_values() * sizeof(double); }

  // All values of one axis across snapshots, flattened snapshot-major.
  std::vector<double> FlattenAxis(int axis) const {
    std::vector<double> out;
    out.reserve(num_snapshots() * num_particles());
    for (const Snapshot& s : snapshots) {
      out.insert(out.end(), s.axes[axis].begin(), s.axes[axis].end());
    }
    return out;
  }
};

}  // namespace mdz::core

#endif  // MDZ_CORE_TRAJECTORY_H_
