#include "core/parallel.h"

#include <array>

namespace mdz::core {

Result<CompressedTrajectory> CompressTrajectoryParallel(
    const Trajectory& trajectory, const Options& options, ThreadPool* pool) {
  if (trajectory.num_snapshots() == 0) {
    return Status::InvalidArgument("empty trajectory");
  }
  MDZ_RETURN_IF_ERROR(options.Validate());
  ThreadPool& p = (pool != nullptr) ? *pool : ThreadPool::Shared();

  // Axis tasks share the pool with their own ADP trial encodes (nested
  // ParallelFor is deadlock-free: the submitting thread drains its batch).
  Options axis_options = options;
  axis_options.pool = &p;

  CompressedTrajectory out;
  std::array<Status, 3> statuses;
  p.ParallelFor(0, 3, [&](size_t axis) {
    statuses[axis] = [&]() -> Status {
      // Label trace events with the axis so a shared TraceSink stays
      // attributable when all three streams interleave into it.
      Options task_options = axis_options;
      task_options.trace_axis = static_cast<int>(axis);
      MDZ_ASSIGN_OR_RETURN(
          auto compressor,
          FieldCompressor::Create(trajectory.num_particles(), task_options));
      for (const Snapshot& snapshot : trajectory.snapshots) {
        MDZ_RETURN_IF_ERROR(compressor->Append(snapshot.axes[axis]));
      }
      MDZ_RETURN_IF_ERROR(compressor->Finish());
      out.axes[axis] = compressor->TakeOutput();
      return Status::OK();
    }();
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<Trajectory> DecompressTrajectoryParallel(
    const CompressedTrajectory& compressed, ThreadPool* pool) {
  ThreadPool& p = (pool != nullptr) ? *pool : ThreadPool::Shared();

  std::array<std::vector<std::vector<double>>, 3> axes;
  std::array<Status, 3> statuses;
  p.ParallelFor(0, 3, [&](size_t axis) {
    statuses[axis] = [&]() -> Status {
      MDZ_ASSIGN_OR_RETURN(axes[axis],
                           DecompressFieldParallel(compressed.axes[axis], &p));
      return Status::OK();
    }();
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  const size_t m = axes[0].size();
  if (axes[1].size() != m || axes[2].size() != m) {
    return Status::Corruption("axis streams have different snapshot counts");
  }
  Trajectory out;
  out.snapshots.resize(m);
  for (size_t s = 0; s < m; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      out.snapshots[s].axes[axis] = std::move(axes[axis][s]);
    }
  }
  return out;
}

Result<std::vector<std::vector<double>>> DecompressFieldParallel(
    std::span<const uint8_t> data, ThreadPool* pool) {
  ThreadPool& p = (pool != nullptr) ? *pool : ThreadPool::Shared();
  MDZ_ASSIGN_OR_RETURN(auto decompressor, FieldDecompressor::Open(data));
  return decompressor->DecodeAll(&p);
}

}  // namespace mdz::core
