#include "core/parallel.h"

#include <thread>

namespace mdz::core {

namespace {

// Runs fn(axis) for axis 0..2 on three threads and collects the per-axis
// Status. Exceptions cannot cross (the library is exception-free), so plain
// joins suffice.
template <typename Fn>
Status RunPerAxis(Fn&& fn) {
  Status statuses[3];
  std::thread threads[3];
  for (int axis = 0; axis < 3; ++axis) {
    threads[axis] = std::thread([axis, &fn, &statuses] {
      statuses[axis] = fn(axis);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Result<CompressedTrajectory> CompressTrajectoryParallel(
    const Trajectory& trajectory, const Options& options) {
  if (trajectory.num_snapshots() == 0) {
    return Status::InvalidArgument("empty trajectory");
  }
  MDZ_RETURN_IF_ERROR(options.Validate());

  CompressedTrajectory out;
  MDZ_RETURN_IF_ERROR(RunPerAxis([&](int axis) -> Status {
    MDZ_ASSIGN_OR_RETURN(
        auto compressor,
        FieldCompressor::Create(trajectory.num_particles(), options));
    for (const Snapshot& snapshot : trajectory.snapshots) {
      MDZ_RETURN_IF_ERROR(compressor->Append(snapshot.axes[axis]));
    }
    MDZ_RETURN_IF_ERROR(compressor->Finish());
    out.axes[axis] = compressor->TakeOutput();
    return Status::OK();
  }));
  return out;
}

Result<Trajectory> DecompressTrajectoryParallel(
    const CompressedTrajectory& compressed) {
  Trajectory out;
  std::array<std::vector<std::vector<double>>, 3> axes;
  MDZ_RETURN_IF_ERROR(RunPerAxis([&](int axis) -> Status {
    MDZ_ASSIGN_OR_RETURN(axes[axis], DecompressField(compressed.axes[axis]));
    return Status::OK();
  }));

  const size_t m = axes[0].size();
  if (axes[1].size() != m || axes[2].size() != m) {
    return Status::Corruption("axis streams have different snapshot counts");
  }
  out.snapshots.resize(m);
  for (size_t s = 0; s < m; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      out.snapshots[s].axes[axis] = std::move(axes[axis][s]);
    }
  }
  return out;
}

}  // namespace mdz::core
