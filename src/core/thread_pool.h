#ifndef MDZ_CORE_THREAD_POOL_H_
#define MDZ_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "obs/timeline.h"

namespace mdz::core {

// Fixed-size, exception-free thread pool shared by every parallel code path
// in the library (per-axis trajectory streams, ADP trial encodes, block-level
// field decoding). Design constraints, in order:
//
//  * No exceptions: tasks are plain callables that report failure through
//    out-parameters (the library's Status convention); nothing throws across
//    the pool boundary.
//  * Nested-safe: ParallelFor/RunTasks may be called from inside a pool task
//    (an axis task fans out ADP trials onto the same pool). The calling
//    thread always participates in its own batch, so a batch completes even
//    if every worker is busy — waiting can never deadlock.
//  * Deterministic results: the pool only changes *where* iterations run,
//    never their outcome; callers that need a deterministic reduction (e.g.
//    ADP's smallest-output winner) combine per-index results in index order
//    after the batch completes.
//  * Serial fallback: a pool built with 0 or 1 threads (or when
//    hardware_concurrency() reports 0 or 1) spawns no workers and runs every
//    batch inline on the calling thread.
class ThreadPool {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency(). A resolved
  // size of 0 or 1 yields a serial pool (no worker threads).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker-thread count; 0 means every batch runs inline (serial pool).
  size_t num_threads() const { return workers_.size(); }
  bool serial() const { return workers_.empty(); }

  // Runs fn(i) for every i in [begin, end) and blocks until all iterations
  // completed. The calling thread executes iterations alongside the workers.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  // Runs every task in `tasks` (blocking, caller participates).
  void RunTasks(std::span<const std::function<void()>> tasks);

  // Fire-and-forget: queues `task` to run on a worker thread and returns
  // immediately. Tasks still queued when the destructor runs are executed
  // during shutdown (workers drain the queue before exiting), so a posted
  // task always runs exactly once. On a serial pool the task runs inline
  // before Post returns. Used by the serve scheduler; callers that need
  // completion signalling layer it on top (the task flips its own latch).
  void Post(std::function<void()> task);

  // Process-wide pool, lazily built with the hardware thread count. Intended
  // for callers that have no pool of their own (CLI default, benches).
  static ThreadPool& Shared();

  // Rebuilds the shared pool with `num_threads` workers (0 = hardware).
  // Must not be called while work is in flight on the shared pool; meant for
  // process start-up (e.g. the CLI's --threads flag).
  static void SetSharedPoolThreads(size_t num_threads);

 private:
  // One ParallelFor call: a half-open index range claimed iteration by
  // iteration by workers and the submitting thread.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    // Submitter's trace context, captured at submit time and adopted by
    // workers around each claimed iteration, so spans opened inside pool
    // tasks stay parented to the submitting request's span tree.
    obs::TraceContext context;
    size_t begin = 0;
    size_t end = 0;
    size_t next = 0;       // next unclaimed iteration (guarded by pool mu_)
    size_t completed = 0;  // finished iterations (guarded by done_mu)
    std::mutex done_mu;
    std::condition_variable done_cv;
    // Detached (Post) batches have no submitter waiting on done_cv; the
    // worker that completes the last iteration deletes `owner` instead.
    bool detached = false;
    void* owner = nullptr;
  };
  struct DetachedTask;

  void WorkerLoop();

  // Claims the next unclaimed iteration of *batch and retires the batch from
  // the queue once none remain. Returns batch->end when there is nothing
  // left to claim. Caller must hold mu_.
  size_t ClaimIterationLocked(Batch* batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Batch*> queue_;  // batches with unclaimed iterations
  bool shutdown_ = false;
};

}  // namespace mdz::core

#endif  // MDZ_CORE_THREAD_POOL_H_
