#ifndef MDZ_CORE_POINTWISE_RELATIVE_H_
#define MDZ_CORE_POINTWISE_RELATIVE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/mdz.h"
#include "util/status.h"

namespace mdz::core {

// Point-wise relative error bound mode: |decoded - d| <= rel_bound * |d| for
// every value d.
//
// Implemented with the logarithmic-transform scheme of Liang et al.
// (CLUSTER'18, the "SZ2" transformation the paper builds on): values are
// mapped to sign + ln|d|, the log field is compressed by MDZ with the
// absolute bound ln(1 + rel_bound), and signs/zeros travel in a small
// lossless side stream. Exact zeros decode as exact zeros.
//
// `base` supplies the MDZ knobs (method, buffer size, ...); its error_bound
// fields are ignored.
Result<std::vector<uint8_t>> CompressFieldPointwiseRelative(
    const std::vector<std::vector<double>>& snapshots, double rel_bound,
    const Options& base = Options());

Result<std::vector<std::vector<double>>> DecompressFieldPointwiseRelative(
    std::span<const uint8_t> data);

}  // namespace mdz::core

#endif  // MDZ_CORE_POINTWISE_RELATIVE_H_
