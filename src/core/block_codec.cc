#include "core/block_codec.h"

#include <algorithm>
#include <cmath>

#include "codec/huffman.h"
#include "codec/lz.h"
#include "core/block_kernels.h"
#include "obs/span.h"
#include "quant/quantizer.h"
#include "util/byte_buffer.h"

namespace mdz::core::internal {

namespace {

// Level-index delta alphabet: symbol 0 escapes to a varint side channel,
// symbols 1..kJAlphabet-1 encode zigzag(delta) inline.
constexpr uint32_t kJAlphabet = 1024;

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Interpolation processing order for the TI method: snapshot 0 first (coded
// by the caller), then midpoints level by level with halving stride.
// Identical on encode and decode.
std::vector<std::pair<size_t, size_t>> InterpolationOrder(size_t s_count) {
  std::vector<std::pair<size_t, size_t>> order;
  if (s_count <= 1) return order;
  size_t top = 1;
  while (top * 2 < s_count) top *= 2;
  for (size_t stride = top; stride >= 1; stride /= 2) {
    for (size_t t = stride; t < s_count; t += 2 * stride) {
      order.emplace_back(t, stride);
    }
    if (stride == 1) break;
  }
  return order;
}

// Spline prediction for the TI method from already-decoded snapshots:
// cubic when the 4-anchor stencil exists, linear with both neighbors,
// previous-anchor extrapolation at the right border. The stencil choice is
// uniform in i, so prediction is computed a row at a time: returns either a
// previously decoded row directly or `scratch` filled with the stencil.
const double* TiPredictRow(const std::vector<std::vector<double>>& decoded,
                           const std::vector<uint8_t>& ready, size_t t,
                           size_t stride, size_t s_count, size_t n,
                           double* scratch) {
  const bool has_right = (t + stride < s_count) && ready[t + stride];
  if (!has_right) return decoded[t - stride].data();
  const bool has_far_left = (t >= 3 * stride) && ready[t - 3 * stride];
  const bool has_far_right =
      (t + 3 * stride < s_count) && ready[t + 3 * stride];
  const double* b = decoded[t - stride].data();
  const double* c = decoded[t + stride].data();
  if (has_far_left && has_far_right) {
    const double* a = decoded[t - 3 * stride].data();
    const double* d = decoded[t + 3 * stride].data();
    for (size_t i = 0; i < n; ++i) {
      scratch[i] = (-a[i] + 9.0 * b[i] + 9.0 * c[i] - d[i]) / 16.0;
    }
    return scratch;
  }
  for (size_t i = 0; i < n; ++i) scratch[i] = 0.5 * (b[i] + c[i]);
  return scratch;
}

// Positional index sequence of the TI processing order (snapshot 0 first,
// then interpolation levels). TI codes are entropy-coded in this order so
// that each interpolation level — whose residual statistics differ by an
// order of magnitude between strides — forms a homogeneous region for the
// dictionary coder.
std::vector<size_t> TiPermutation(size_t s_count, size_t n) {
  std::vector<size_t> perm;
  perm.reserve(s_count * n);
  for (size_t i = 0; i < n; ++i) perm.push_back(i);
  for (const auto& [t, stride] : InterpolationOrder(s_count)) {
    (void)stride;
    for (size_t i = 0; i < n; ++i) perm.push_back(t * n + i);
  }
  return perm;
}

}  // namespace

Result<BlockHeader> PeekBlockHeader(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (method_byte > 4 || method_byte == 3) {
    return Status::Corruption("bad block method byte");
  }
  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  if (s_count == 0) return Status::Corruption("empty block in stream");
  if (s_count > (1ull << 32)) {
    return Status::Corruption("bad block snapshot count");
  }
  BlockHeader header;
  header.method = static_cast<Method>(method_byte);
  header.s_count = static_cast<size_t>(s_count);
  return header;
}

Result<LevelModel> PeekBlockLevels(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (method_byte > 4 || method_byte == 3) {
    return Status::Corruption("bad block method byte");
  }
  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  const Method method = static_cast<Method>(method_byte);
  LevelModel levels;
  if (method != Method::kVQ && method != Method::kVQT) return levels;
  MDZ_RETURN_IF_ERROR(r.Get(&levels.mu));
  MDZ_RETURN_IF_ERROR(r.Get(&levels.lambda));
  if (!(levels.lambda > 0.0) || !std::isfinite(levels.mu)) {
    return Status::Corruption("bad level model in block");
  }
  levels.valid = true;
  return levels;
}

LevelModel FitLevelModel(const std::vector<double>& snapshot,
                         const cluster::LevelFitOptions& options) {
  LevelModel levels;
  auto fit = cluster::FitLevels(snapshot, options);
  if (fit.ok()) {
    levels.mu = fit->mu;
    levels.lambda = std::max(fit->lambda, 1e-300);
    levels.valid = levels.lambda > 0.0 && std::isfinite(levels.lambda) &&
                   std::isfinite(levels.mu);
  }
  if (!levels.valid) {
    levels.mu = 0.0;
    levels.lambda = 1.0;
    levels.valid = true;
  }
  return levels;
}

BlockCodec::BlockCodec(double abs_eb, uint32_t quantization_scale,
                       CodeLayout layout)
    : abs_eb_(abs_eb), scale_(quantization_scale), layout_(layout) {}

EncodedBlock BlockCodec::Encode(Method method,
                                std::span<const std::vector<double>> buffer,
                                const PredictorState& state,
                                const LevelModel& levels) const {
  MDZ_SPAN("encode_block");
  const size_t s_count = buffer.size();
  const size_t n = s_count == 0 ? 0 : buffer[0].size();
  const quant::LinearQuantizer quantizer(abs_eb_, scale_);
  const BlockKernels& kernels = ActiveBlockKernels();

  // Positional code array (s * n + i); methods that process out of
  // snapshot order (TI) still land codes at their logical position. Escapes
  // stay in processing order, which encode and decode share.
  std::vector<uint32_t> bins(s_count * n, 0);
  std::vector<uint32_t> jcodes;  // level-delta symbols (VQ: all snaps, VQT: 1)
  ByteWriter j_extras;           // escaped level deltas
  ByteWriter escapes;            // verbatim doubles
  size_t escape_count = 0;

  std::vector<std::vector<double>> decoded(s_count, std::vector<double>(n));

  // Scratch rows for the kernel fast paths (VQ level lookup, TI stencil).
  std::vector<double> pred_scratch(n);
  std::vector<double> level_scratch(n);

  auto quantize = [&](double value, double pred, size_t s, size_t i) {
    double dec;
    const uint32_t code = quantizer.Encode(value, pred, &dec);
    if (code == 0) {
      escapes.Put<double>(value);
      ++escape_count;
    }
    decoded[s][i] = dec;
    bins[s * n + i] = code;
  };

  // Row-wide fused delta + quantization through the dispatched kernel.
  // Escapes are appended by scanning the finished code row, which preserves
  // the i-ascending escape order of the element-wise path.
  auto quantize_row = [&](size_t s, const double* preds) {
    uint32_t* row = bins.data() + s * n;
    kernels.quantize_row(quantizer, buffer[s].data(), preds, n, row,
                         decoded[s].data());
    const double* vals = buffer[s].data();
    for (size_t i = 0; i < n; ++i) {
      if (row[i] == 0) {
        escapes.Put<double>(vals[i]);
        ++escape_count;
      }
    }
  };

  auto encode_vq_snapshot = [&](size_t s) {
    kernels.vq_predict(buffer[s].data(), n, levels.mu, levels.lambda,
                       level_scratch.data(), pred_scratch.data());
    int64_t prev_level = 0;
    for (size_t i = 0; i < n; ++i) {
      const int64_t level = static_cast<int64_t>(level_scratch[i]);
      const uint64_t zz = Zigzag(level - prev_level);
      prev_level = level;
      if (zz < kJAlphabet - 1) {
        jcodes.push_back(static_cast<uint32_t>(zz + 1));
      } else {
        jcodes.push_back(0);
        j_extras.PutVarint(zz);
      }
    }
    quantize_row(s, pred_scratch.data());
  };

  auto encode_time_snapshot = [&](size_t s, const std::vector<double>& base) {
    quantize_row(s, base.data());
  };

  switch (method) {
    case Method::kVQ: {
      MDZ_SPAN("predict_vq");
      for (size_t s = 0; s < s_count; ++s) encode_vq_snapshot(s);
      break;
    }
    case Method::kVQT: {
      MDZ_SPAN("predict_vqt");
      if (s_count > 0) encode_vq_snapshot(0);
      for (size_t s = 1; s < s_count; ++s) {
        encode_time_snapshot(s, decoded[s - 1]);
      }
      break;
    }
    case Method::kMT: {
      MDZ_SPAN("predict_mt");
      if (s_count > 0) {
        if (state.has_initial()) {
          encode_time_snapshot(0, state.initial);
        } else {
          // Very first snapshot of the stream: order-1 Lorenzo in space.
          for (size_t i = 0; i < n; ++i) {
            const double pred = (i > 0) ? decoded[0][i - 1] : 0.0;
            quantize(buffer[0][i], pred, 0, i);
          }
        }
      }
      for (size_t s = 1; s < s_count; ++s) {
        encode_time_snapshot(s, decoded[s - 1]);
      }
      break;
    }
    case Method::kTI: {
      MDZ_SPAN("predict_ti");
      if (s_count > 0) {
        if (state.has_prev_last()) {
          encode_time_snapshot(0, state.prev_last);  // cross-buffer chain
        } else if (state.has_initial()) {
          encode_time_snapshot(0, state.initial);
        } else {
          for (size_t i = 0; i < n; ++i) {
            const double pred = (i > 0) ? decoded[0][i - 1] : 0.0;
            quantize(buffer[0][i], pred, 0, i);
          }
        }
      }
      std::vector<uint8_t> ready(s_count, 0);
      if (s_count > 0) ready[0] = 1;
      for (const auto& [t, stride] : InterpolationOrder(s_count)) {
        const double* preds = TiPredictRow(decoded, ready, t, stride, s_count,
                                           n, pred_scratch.data());
        quantize_row(t, preds);
        ready[t] = 1;
      }
      break;
    }
    case Method::kAdaptive:
      // Callers must resolve kAdaptive to a concrete method before Encode.
      break;
  }

  // --- Entropy + dictionary stages -----------------------------------------
  // Two candidate encodings of the quantization codes, smallest wins:
  //  mode 0: Huffman symbols, then the dictionary coder (paper's
  //          Zstd(Huffman(B)) pipeline) — best for high-entropy codes;
  //  mode 1: raw u16-packed codes straight into the dictionary coder — best
  //          when long runs of identical codes dominate (temporally stable
  //          data in the Seq-2 layout), which bit-packed Huffman would hide.
  std::vector<uint32_t> laid_storage;
  {
    MDZ_SPAN("reorder");
    if (method == Method::kTI && s_count > 1) {
      const std::vector<size_t> perm = TiPermutation(s_count, n);
      laid_storage.resize(bins.size());
      for (size_t k = 0; k < perm.size(); ++k) laid_storage[k] = bins[perm[k]];
    } else if (layout_ == CodeLayout::kParticleMajor && s_count > 1) {
      laid_storage.resize(bins.size());
      kernels.transpose(bins.data(), s_count, n, laid_storage.data());
    }
  }
  const std::vector<uint32_t>& laid =
      laid_storage.empty() ? bins : laid_storage;
  std::vector<uint8_t> jhuff;
  std::vector<uint8_t> bhuff;
  {
    MDZ_SPAN("huffman_encode");
    if (!jcodes.empty()) jhuff = codec::HuffmanEncode(jcodes, kJAlphabet);
    bhuff = codec::HuffmanEncode(laid, scale_);
  }

  // Run structure only pays off when one code dominates; skip the second
  // candidate otherwise to keep compression throughput high. The same
  // histogram pass yields the quantization-bin entropy for telemetry.
  size_t dominant = 0;
  double entropy_bits = 0.0;
  if (!laid.empty()) {
    std::vector<uint32_t> histogram(scale_, 0);
    for (uint32_t code : laid) ++histogram[code];
    const double total = static_cast<double>(laid.size());
    for (uint32_t count : histogram) {
      dominant = std::max<size_t>(dominant, count);
      if (count > 0) {
        const double p = count / total;
        entropy_bits -= p * std::log2(p);
      }
    }
  }

  std::vector<uint8_t> main_lz;
  std::vector<uint8_t> side_lz;
  uint8_t b_mode = 0;
  {
    MDZ_SPAN("lossless_backend");
    ByteWriter main0;
    main0.PutBlob(jhuff);
    main0.PutBytes(bhuff.data(), bhuff.size());
    main_lz = codec::LzCompress(main0.bytes());

    const bool try_packed =
        !laid.empty() && dominant * 2 > laid.size() && scale_ <= (1u << 16);
    if (try_packed) {
      ByteWriter main1;
      main1.PutBlob(jhuff);
      for (uint32_t code : laid) {
        main1.Put<uint16_t>(static_cast<uint16_t>(code));
      }
      std::vector<uint8_t> packed_lz = codec::LzCompress(main1.bytes());
      if (packed_lz.size() < main_lz.size()) {
        main_lz = std::move(packed_lz);
        b_mode = 1;
      }
    }

    ByteWriter side;
    side.PutVarint(escape_count);
    side.PutBytes(escapes.bytes().data(), escapes.size());
    side.PutBlob(j_extras.bytes());
    side_lz = codec::LzCompress(side.bytes());
  }

  EncodedBlock block;
  ByteWriter out;
  out.Put<uint8_t>(static_cast<uint8_t>(method));
  out.PutVarint(s_count);
  if (method == Method::kVQ || method == Method::kVQT) {
    out.Put<double>(levels.mu);
    out.Put<double>(levels.lambda);
  }
  out.Put<uint8_t>(b_mode);
  out.PutBlob(side_lz);
  out.PutBlob(main_lz);
  block.bytes = out.TakeBytes();
  block.escape_count = escape_count;
  block.huffman_bytes = jhuff.size() + bhuff.size();
  block.main_lz_bytes = main_lz.size();
  block.side_lz_bytes = side_lz.size();
  block.bin_entropy_bits = entropy_bits;

  block.end_state = state;
  if (!state.has_initial() && s_count > 0) {
    block.end_state.initial = decoded[0];
  }
  if (s_count > 0) block.end_state.prev_last = decoded[s_count - 1];
  return block;
}

Status BlockCodec::Decode(std::span<const uint8_t> bytes, size_t n,
                          PredictorState* state,
                          std::vector<std::vector<double>>* out) const {
  MDZ_SPAN("decode_block");
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (method_byte > 4 || method_byte == 3) {
    return Status::Corruption("bad block method byte");
  }
  const Method method = static_cast<Method>(method_byte);

  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  if (s_count == 0 || s_count > (1ull << 32) ||
      s_count * n > (1ull << 31)) {
    return Status::Corruption("bad block snapshot count");
  }

  LevelModel levels;
  if (method == Method::kVQ || method == Method::kVQT) {
    MDZ_RETURN_IF_ERROR(r.Get(&levels.mu));
    MDZ_RETURN_IF_ERROR(r.Get(&levels.lambda));
    if (!(levels.lambda > 0.0) || !std::isfinite(levels.mu)) {
      return Status::Corruption("bad level model in block");
    }
    levels.valid = true;
  }

  uint8_t b_mode = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&b_mode));
  if (b_mode > 1) return Status::Corruption("bad quant-code mode byte");

  std::span<const uint8_t> side_blob, main_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&side_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&main_blob));

  std::vector<uint8_t> side_bytes;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(side_blob, &side_bytes));
  ByteReader side(side_bytes);
  uint64_t escape_count = 0;
  MDZ_RETURN_IF_ERROR(side.GetVarint(&escape_count));
  if (escape_count > side.remaining() / sizeof(double)) {
    return Status::Corruption("escape count exceeds side channel size");
  }
  std::vector<double> escapes(escape_count);
  MDZ_RETURN_IF_ERROR(
      side.GetBytes(escapes.data(), escape_count * sizeof(double)));
  std::span<const uint8_t> j_extras_blob;
  MDZ_RETURN_IF_ERROR(side.GetBlob(&j_extras_blob));
  ByteReader j_extras(j_extras_blob);

  std::vector<uint8_t> main_bytes;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(main_blob, &main_bytes));
  ByteReader main(main_bytes);
  std::span<const uint8_t> jhuff_blob;
  MDZ_RETURN_IF_ERROR(main.GetBlob(&jhuff_blob));

  std::vector<uint32_t> jcodes;
  if (!jhuff_blob.empty()) {
    MDZ_RETURN_IF_ERROR(codec::HuffmanDecode(jhuff_blob, &jcodes));
  }
  std::vector<uint32_t> laid;
  if (b_mode == 0) {
    const std::span<const uint8_t> bhuff(main_bytes.data() + main.position(),
                                         main_bytes.size() - main.position());
    MDZ_RETURN_IF_ERROR(codec::HuffmanDecode(bhuff, &laid));
  } else {
    const size_t count = s_count * n;
    if (main.remaining() != count * sizeof(uint16_t)) {
      return Status::Corruption("packed quant code size mismatch");
    }
    laid.resize(count);
    for (size_t i = 0; i < count; ++i) {
      uint16_t code = 0;
      MDZ_RETURN_IF_ERROR(main.Get(&code));
      laid[i] = code;
    }
  }
  if (laid.size() != s_count * n) {
    return Status::Corruption("quantization code count mismatch");
  }
  const BlockKernels& kernels = ActiveBlockKernels();
  std::vector<uint32_t> bins;
  if (method == Method::kTI && s_count > 1) {
    const std::vector<size_t> perm = TiPermutation(s_count, n);
    bins.resize(laid.size());
    for (size_t k = 0; k < perm.size(); ++k) bins[perm[k]] = laid[k];
  } else if (layout_ == CodeLayout::kParticleMajor && s_count > 1) {
    bins.resize(laid.size());
    kernels.transpose(laid.data(), n, s_count, bins.data());
  } else {
    bins = laid;
  }

  const size_t expected_j =
      (method == Method::kVQ) ? s_count * n
      : (method == Method::kVQT) ? n
                                 : 0;
  if (jcodes.size() != expected_j) {
    return Status::Corruption("level-delta code count mismatch");
  }

  const quant::LinearQuantizer quantizer(abs_eb_, scale_);
  size_t escape_pos = 0;
  size_t j_pos = 0;

  std::vector<std::vector<double>> decoded(s_count, std::vector<double>(n));

  auto reconstruct = [&](size_t s, size_t i, double pred) -> Status {
    const uint32_t code = bins[s * n + i];
    if (code == 0) {
      if (escape_pos >= escapes.size()) {
        return Status::Corruption("escape channel exhausted");
      }
      decoded[s][i] = escapes[escape_pos++];
    } else {
      if (code >= scale_) return Status::Corruption("quant code out of scale");
      decoded[s][i] = quantizer.Decode(code, pred);
    }
    return Status::OK();
  };

  // Scratch row for predictions (VQ level lookup, TI stencil).
  std::vector<double> pred_scratch(n);

  // Row-wide dequantization through the dispatched kernel. The fast path
  // refuses rows containing escapes or corrupt codes; those rows are redone
  // on the exact element-wise path (escape side channel, corruption Status).
  auto decode_row = [&](size_t s, const double* preds) -> Status {
    if (kernels.dequantize_row(quantizer, bins.data() + s * n, preds, n,
                               decoded[s].data())) {
      return Status::OK();
    }
    for (size_t i = 0; i < n; ++i) {
      MDZ_RETURN_IF_ERROR(reconstruct(s, i, preds[i]));
    }
    return Status::OK();
  };

  auto decode_vq_snapshot = [&](size_t s) -> Status {
    int64_t prev_level = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t sym = jcodes[j_pos++];
      uint64_t zz;
      if (sym == 0) {
        MDZ_RETURN_IF_ERROR(j_extras.GetVarint(&zz));
      } else {
        zz = sym - 1;
      }
      const int64_t level = prev_level + Unzigzag(zz);
      prev_level = level;
      pred_scratch[i] = levels.mu + levels.lambda * static_cast<double>(level);
    }
    return decode_row(s, pred_scratch.data());
  };

  auto decode_time_snapshot = [&](size_t s,
                                  const std::vector<double>& base) -> Status {
    return decode_row(s, base.data());
  };

  switch (method) {
    case Method::kVQ:
      for (size_t s = 0; s < s_count; ++s) {
        MDZ_RETURN_IF_ERROR(decode_vq_snapshot(s));
      }
      break;
    case Method::kVQT:
      MDZ_RETURN_IF_ERROR(decode_vq_snapshot(0));
      for (size_t s = 1; s < s_count; ++s) {
        MDZ_RETURN_IF_ERROR(decode_time_snapshot(s, decoded[s - 1]));
      }
      break;
    case Method::kMT:
      if (state->has_initial()) {
        MDZ_RETURN_IF_ERROR(decode_time_snapshot(0, state->initial));
      } else {
        for (size_t i = 0; i < n; ++i) {
          const uint32_t code = bins[i];
          if (code == 0) {
            if (escape_pos >= escapes.size()) {
              return Status::Corruption("escape channel exhausted");
            }
            decoded[0][i] = escapes[escape_pos++];
          } else {
            if (code >= scale_) {
              return Status::Corruption("quant code out of scale");
            }
            const double pred = (i > 0) ? decoded[0][i - 1] : 0.0;
            decoded[0][i] = quantizer.Decode(code, pred);
          }
        }
      }
      for (size_t s = 1; s < s_count; ++s) {
        MDZ_RETURN_IF_ERROR(decode_time_snapshot(s, decoded[s - 1]));
      }
      break;
    case Method::kTI: {
      if (state->has_prev_last()) {
        MDZ_RETURN_IF_ERROR(decode_time_snapshot(0, state->prev_last));
      } else if (state->has_initial()) {
        MDZ_RETURN_IF_ERROR(decode_time_snapshot(0, state->initial));
      } else {
        for (size_t i = 0; i < n; ++i) {
          const uint32_t code = bins[i];
          if (code == 0) {
            if (escape_pos >= escapes.size()) {
              return Status::Corruption("escape channel exhausted");
            }
            decoded[0][i] = escapes[escape_pos++];
          } else {
            if (code >= scale_) {
              return Status::Corruption("quant code out of scale");
            }
            const double pred = (i > 0) ? decoded[0][i - 1] : 0.0;
            decoded[0][i] = quantizer.Decode(code, pred);
          }
        }
      }
      std::vector<uint8_t> ready(s_count, 0);
      ready[0] = 1;
      for (const auto& [t, stride] : InterpolationOrder(s_count)) {
        const double* preds = TiPredictRow(decoded, ready, t, stride, s_count,
                                           n, pred_scratch.data());
        MDZ_RETURN_IF_ERROR(decode_row(t, preds));
        ready[t] = 1;
      }
      break;
    }
    case Method::kAdaptive:
      return Status::Corruption("adaptive method byte in block");
  }

  if (!state->has_initial()) {
    state->initial = decoded[0];
  }
  state->prev_last = decoded[s_count - 1];
  for (auto& snapshot : decoded) {
    out->push_back(std::move(snapshot));
  }
  return Status::OK();
}

}  // namespace mdz::core::internal
