#include "core/block_codec.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "codec/code_backend.h"
#include "codec/lz.h"
#include "core/block_kernels.h"
#include "core/predictors.h"
#include "obs/span.h"
#include "quant/quantizer.h"
#include "quant/row_coder.h"
#include "util/byte_buffer.h"

namespace mdz::core::internal {

namespace {

// Level-index delta alphabet of the VQ family's J stream (symbol 0 escapes
// to a varint side channel). Mirrored in core/predictors.cc, which owns the
// symbol encoding; here it only sizes the backend's Huffman alphabet.
constexpr uint32_t kJAlphabet = 1024;

// Method-byte registry (docs/FORMAT.md). 3 is kAdaptive — a selector, never
// a block method; 7..255 are reserved.
bool ValidMethodByte(uint8_t method_byte) {
  return method_byte <= 6 && method_byte != 3;
}

bool MethodCarriesLevels(Method method) {
  return method == Method::kVQ || method == Method::kVQT;
}

// Encode side of the quantizer seam: quantizes raw values against the
// predictor's predictions, collecting codes, reconstructions, and the
// escape side channel.
class EncodeRowCoder final : public quant::RowCoder {
 public:
  EncodeRowCoder(const quant::LinearQuantizer& quantizer,
                 std::span<const std::vector<double>> buffer, size_t s_count,
                 size_t n)
      : RowCoder(s_count, n),
        quantizer_(quantizer),
        kernels_(ActiveBlockKernels()),
        buffer_(buffer),
        bins_(s_count * n, 0),
        decoded_(s_count, std::vector<double>(n)) {}

  // Row-wide fused delta + quantization through the dispatched kernel.
  // Escapes are appended by scanning the finished code row, which preserves
  // the i-ascending escape order of the element-wise path.
  Status CodeRow(size_t t, const double* preds) override {
    const size_t n = row_len();
    uint32_t* row = bins_.data() + t * n;
    kernels_.quantize_row(quantizer_, buffer_[t].data(), preds, n, row,
                          decoded_[t].data());
    const double* vals = buffer_[t].data();
    for (size_t i = 0; i < n; ++i) {
      if (row[i] == 0) {
        escapes_.Put<double>(vals[i]);
        ++escape_count_;
      }
    }
    return Status::OK();
  }

  Status CodeElement(size_t t, size_t i, double pred) override {
    const double value = buffer_[t][i];
    double dec;
    const uint32_t code = quantizer_.Encode(value, pred, &dec);
    if (code == 0) {
      escapes_.Put<double>(value);
      ++escape_count_;
    }
    decoded_[t][i] = dec;
    bins_[t * row_len() + i] = code;
    return Status::OK();
  }

  const std::vector<std::vector<double>>& decoded() const override {
    return decoded_;
  }

  const std::vector<uint32_t>& bins() const { return bins_; }
  const ByteWriter& escapes() const { return escapes_; }
  size_t escape_count() const { return escape_count_; }

 private:
  const quant::LinearQuantizer& quantizer_;
  const BlockKernels& kernels_;
  std::span<const std::vector<double>> buffer_;
  std::vector<uint32_t> bins_;
  std::vector<std::vector<double>> decoded_;
  ByteWriter escapes_;
  size_t escape_count_ = 0;
};

// Decode side of the quantizer seam: reconstructs rows from the code array
// and the escape side channel, surfacing Corruption for anything the
// encoder could not have produced.
class DecodeRowCoder final : public quant::RowCoder {
 public:
  DecodeRowCoder(const quant::LinearQuantizer& quantizer,
                 std::vector<uint32_t> bins, std::vector<double> escapes,
                 size_t s_count, size_t n)
      : RowCoder(s_count, n),
        quantizer_(quantizer),
        kernels_(ActiveBlockKernels()),
        bins_(std::move(bins)),
        escapes_(std::move(escapes)),
        decoded_(s_count, std::vector<double>(n)) {}

  // Row-wide dequantization through the dispatched kernel. The fast path
  // refuses rows containing escapes or corrupt codes; those rows are redone
  // on the exact element-wise path (escape side channel, corruption Status).
  Status CodeRow(size_t t, const double* preds) override {
    const size_t n = row_len();
    if (kernels_.dequantize_row(quantizer_, bins_.data() + t * n, preds, n,
                                decoded_[t].data())) {
      return Status::OK();
    }
    for (size_t i = 0; i < n; ++i) {
      MDZ_RETURN_IF_ERROR(Reconstruct(t, i, preds[i]));
    }
    return Status::OK();
  }

  Status CodeElement(size_t t, size_t i, double pred) override {
    return Reconstruct(t, i, pred);
  }

  const std::vector<std::vector<double>>& decoded() const override {
    return decoded_;
  }

  std::vector<std::vector<double>>& mutable_decoded() { return decoded_; }

 private:
  Status Reconstruct(size_t t, size_t i, double pred) {
    const uint32_t code = bins_[t * row_len() + i];
    if (code == 0) {
      if (escape_pos_ >= escapes_.size()) {
        return Status::Corruption("escape channel exhausted");
      }
      decoded_[t][i] = escapes_[escape_pos_++];
    } else {
      if (code >= quantizer_.scale()) {
        return Status::Corruption("quant code out of scale");
      }
      decoded_[t][i] = quantizer_.Decode(code, pred);
    }
    return Status::OK();
  }

  const quant::LinearQuantizer& quantizer_;
  const BlockKernels& kernels_;
  std::vector<uint32_t> bins_;
  std::vector<double> escapes_;
  size_t escape_pos_ = 0;
  std::vector<std::vector<double>> decoded_;
};

}  // namespace

Result<BlockHeader> PeekBlockHeader(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (!ValidMethodByte(method_byte)) {
    return Status::Corruption("bad block method byte");
  }
  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  if (s_count == 0) return Status::Corruption("empty block in stream");
  if (s_count > (1ull << 32)) {
    return Status::Corruption("bad block snapshot count");
  }
  BlockHeader header;
  header.method = static_cast<Method>(method_byte);
  header.s_count = static_cast<size_t>(s_count);
  return header;
}

Result<LevelModel> PeekBlockLevels(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (!ValidMethodByte(method_byte)) {
    return Status::Corruption("bad block method byte");
  }
  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  const Method method = static_cast<Method>(method_byte);
  LevelModel levels;
  if (!MethodCarriesLevels(method)) return levels;
  MDZ_RETURN_IF_ERROR(r.Get(&levels.mu));
  MDZ_RETURN_IF_ERROR(r.Get(&levels.lambda));
  if (!(levels.lambda > 0.0) || !std::isfinite(levels.mu)) {
    return Status::Corruption("bad level model in block");
  }
  levels.valid = true;
  return levels;
}

LevelModel FitLevelModel(const std::vector<double>& snapshot,
                         const cluster::LevelFitOptions& options) {
  LevelModel levels;
  auto fit = cluster::FitLevels(snapshot, options);
  if (fit.ok()) {
    levels.mu = fit->mu;
    levels.lambda = std::max(fit->lambda, 1e-300);
    levels.valid = levels.lambda > 0.0 && std::isfinite(levels.lambda) &&
                   std::isfinite(levels.mu);
  }
  if (!levels.valid) {
    levels.mu = 0.0;
    levels.lambda = 1.0;
    levels.valid = true;
  }
  return levels;
}

BlockCodec::BlockCodec(double abs_eb, uint32_t quantization_scale,
                       CodeLayout layout, double eb_split)
    : abs_eb_(abs_eb),
      scale_(quantization_scale),
      layout_(layout),
      eb_split_(eb_split) {}

EncodedBlock BlockCodec::Encode(Method method,
                                std::span<const std::vector<double>> buffer,
                                const PredictorState& state,
                                const LevelModel& levels) const {
  MDZ_SPAN("encode_block");
  const size_t s_count = buffer.size();
  const size_t n = s_count == 0 ? 0 : buffer[0].size();

  // --- Predictor + quantizer stages ----------------------------------------
  // The bit-adaptive candidate spends only its share of the error budget on
  // the grid; the grid actually used is serialized into the block below.
  const double quant_eb =
      (method == Method::kBitAdaptive) ? abs_eb_ * eb_split_ : abs_eb_;
  const quant::LinearQuantizer quantizer(quant_eb, scale_);
  EncodeRowCoder coder(quantizer, buffer, s_count, n);
  std::vector<uint32_t> jcodes;  // level-delta symbols (VQ: all snaps, VQT: 1)
  ByteWriter j_extras;           // escaped level deltas
  auto predictor = MakeEncodePredictor(method, buffer, levels, &jcodes,
                                       &j_extras);
  if (predictor != nullptr) {
    // The encode-side coder cannot fail; Drive's Status is for decode.
    (void)predictor->Drive(state, coder);
  }

  // --- Entropy-stage layout -------------------------------------------------
  const std::vector<uint32_t>& bins = coder.bins();
  std::vector<uint32_t> laid_storage;
  {
    MDZ_SPAN("reorder");
    if (UsesInterpolationLayout(method) && s_count > 1) {
      const std::vector<size_t> perm = TiPermutation(s_count, n);
      laid_storage.resize(bins.size());
      for (size_t k = 0; k < perm.size(); ++k) laid_storage[k] = bins[perm[k]];
    } else if (layout_ == CodeLayout::kParticleMajor && s_count > 1) {
      laid_storage.resize(bins.size());
      ActiveBlockKernels().transpose(bins.data(), s_count, n,
                                     laid_storage.data());
    }
  }
  const std::vector<uint32_t>& laid =
      laid_storage.empty() ? bins : laid_storage;

  // --- Encoder + lossless backend ------------------------------------------
  codec::MainPayload payload;
  if (method == Method::kBitAdaptive) {
    payload = codec::BitpackCodeBackend(scale_, kJAlphabet)
                  .EncodeMain(jcodes, laid);
  } else {
    payload = codec::HuffmanLzCodeBackend(scale_, kJAlphabet)
                  .EncodeMain(jcodes, laid);
  }

  std::vector<uint8_t> side_lz;
  {
    MDZ_SPAN("lossless_backend");
    ByteWriter side;
    side.PutVarint(coder.escape_count());
    side.PutBytes(coder.escapes().bytes().data(), coder.escapes().size());
    side.PutBlob(j_extras.bytes());
    side_lz = codec::LzCompress(side.bytes());
  }

  EncodedBlock block;
  ByteWriter out;
  out.Put<uint8_t>(static_cast<uint8_t>(method));
  out.PutVarint(s_count);
  if (MethodCarriesLevels(method)) {
    out.Put<double>(levels.mu);
    out.Put<double>(levels.lambda);
  }
  if (method == Method::kBitAdaptive) {
    out.Put<double>(quant_eb);  // self-describing: decode needs no eb_split
  }
  out.Put<uint8_t>(payload.mode);
  out.PutBlob(side_lz);
  out.PutBlob(payload.main_lz);
  block.bytes = out.TakeBytes();
  block.escape_count = coder.escape_count();
  block.huffman_bytes = payload.huffman_bytes;
  block.main_lz_bytes = payload.main_lz.size();
  block.side_lz_bytes = side_lz.size();
  block.bin_entropy_bits = payload.entropy_bits;

  block.end_state = state;
  if (!state.has_initial() && s_count > 0) {
    block.end_state.initial = coder.decoded()[0];
  }
  if (s_count > 0) block.end_state.prev_last = coder.decoded()[s_count - 1];
  return block;
}

Status BlockCodec::Decode(std::span<const uint8_t> bytes, size_t n,
                          PredictorState* state,
                          std::vector<std::vector<double>>* out) const {
  MDZ_SPAN("decode_block");
  ByteReader r(bytes);
  uint8_t method_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&method_byte));
  if (!ValidMethodByte(method_byte)) {
    return Status::Corruption("bad block method byte");
  }
  const Method method = static_cast<Method>(method_byte);
  if (method == Method::kAdaptive) {
    return Status::Corruption("adaptive method byte in block");
  }

  uint64_t s_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  if (s_count == 0 || s_count > (1ull << 32) ||
      s_count * n > (1ull << 31)) {
    return Status::Corruption("bad block snapshot count");
  }

  LevelModel levels;
  if (MethodCarriesLevels(method)) {
    MDZ_RETURN_IF_ERROR(r.Get(&levels.mu));
    MDZ_RETURN_IF_ERROR(r.Get(&levels.lambda));
    if (!(levels.lambda > 0.0) || !std::isfinite(levels.mu)) {
      return Status::Corruption("bad level model in block");
    }
    levels.valid = true;
  }

  double quant_eb = abs_eb_;
  if (method == Method::kBitAdaptive) {
    MDZ_RETURN_IF_ERROR(r.Get(&quant_eb));
    // The encoder only ever narrows the grid (eb_split <= 1); a recorded
    // bound looser than the stream's would void the error bound.
    if (!(quant_eb > 0.0) || !std::isfinite(quant_eb) || quant_eb > abs_eb_) {
      return Status::Corruption("bad bit-adaptive quantizer bound");
    }
  }

  uint8_t b_mode = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&b_mode));
  if (method == Method::kBitAdaptive) {
    if (b_mode != 2) return Status::Corruption("bad quant-code mode byte");
  } else if (b_mode > 1) {
    return Status::Corruption("bad quant-code mode byte");
  }

  std::span<const uint8_t> side_blob, main_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&side_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&main_blob));

  std::vector<uint8_t> side_bytes;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(side_blob, &side_bytes));
  ByteReader side(side_bytes);
  uint64_t escape_count = 0;
  MDZ_RETURN_IF_ERROR(side.GetVarint(&escape_count));
  if (escape_count > side.remaining() / sizeof(double)) {
    return Status::Corruption("escape count exceeds side channel size");
  }
  std::vector<double> escapes(escape_count);
  MDZ_RETURN_IF_ERROR(
      side.GetBytes(escapes.data(), escape_count * sizeof(double)));
  std::span<const uint8_t> j_extras_blob;
  MDZ_RETURN_IF_ERROR(side.GetBlob(&j_extras_blob));
  ByteReader j_extras(j_extras_blob);

  std::vector<uint32_t> jcodes;
  std::vector<uint32_t> laid;
  if (method == Method::kBitAdaptive) {
    MDZ_RETURN_IF_ERROR(
        codec::BitpackCodeBackend(scale_, kJAlphabet)
            .DecodeMain(b_mode, main_blob, s_count * n, &jcodes, &laid));
  } else {
    MDZ_RETURN_IF_ERROR(
        codec::HuffmanLzCodeBackend(scale_, kJAlphabet)
            .DecodeMain(b_mode, main_blob, s_count * n, &jcodes, &laid));
  }

  std::vector<uint32_t> bins;
  if (UsesInterpolationLayout(method) && s_count > 1) {
    const std::vector<size_t> perm = TiPermutation(s_count, n);
    bins.resize(laid.size());
    for (size_t k = 0; k < perm.size(); ++k) bins[perm[k]] = laid[k];
  } else if (layout_ == CodeLayout::kParticleMajor && s_count > 1) {
    bins.resize(laid.size());
    ActiveBlockKernels().transpose(laid.data(), n, s_count, bins.data());
  } else {
    bins = std::move(laid);
  }

  if (jcodes.size() != ExpectedJCodes(method, s_count, n)) {
    return Status::Corruption("level-delta code count mismatch");
  }

  const quant::LinearQuantizer quantizer(quant_eb, scale_);
  DecodeRowCoder coder(quantizer, std::move(bins), std::move(escapes),
                       s_count, n);
  auto predictor = MakeDecodePredictor(method, levels, jcodes, &j_extras);
  if (predictor == nullptr) {
    return Status::Corruption("adaptive method byte in block");
  }
  MDZ_RETURN_IF_ERROR(predictor->Drive(*state, coder));

  std::vector<std::vector<double>>& decoded = coder.mutable_decoded();
  if (!state->has_initial()) {
    state->initial = decoded[0];
  }
  state->prev_last = decoded[s_count - 1];
  for (auto& snapshot : decoded) {
    out->push_back(std::move(snapshot));
  }
  return Status::OK();
}

}  // namespace mdz::core::internal
