#ifndef MDZ_MD_DUMP_H_
#define MDZ_MD_DUMP_H_

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/mdz.h"
#include "md/vec3.h"
#include "util/status.h"

namespace mdz::md {

// Trajectory dump sink for the simulation driver, mirroring LAMMPS' dump
// facility (paper Section VII-D): either raw binary positions or in-situ
// MDZ-compressed streams. Both write to a file so the Table VII experiment
// measures real output (serialization + I/O) cost.
class DumpWriter {
 public:
  virtual ~DumpWriter() = default;

  virtual Status WriteSnapshot(const std::vector<Vec3>& positions) = 0;
  virtual Status Finish() = 0;

  // Wall-clock seconds spent inside WriteSnapshot/Finish.
  double output_seconds() const { return output_seconds_; }
  // Bytes written to the file so far (post-compression if any).
  size_t bytes_written() const { return bytes_written_; }

 protected:
  double output_seconds_ = 0.0;
  size_t bytes_written_ = 0;
};

// Writes raw little-endian doubles (x0 y0 z0 x1 y1 z1 ...) per snapshot.
class RawDumpWriter : public DumpWriter {
 public:
  static Result<std::unique_ptr<RawDumpWriter>> Open(const std::string& path);
  ~RawDumpWriter() override;

  Status WriteSnapshot(const std::vector<Vec3>& positions) override;
  Status Finish() override;

 private:
  explicit RawDumpWriter(std::FILE* file) : file_(file) {}
  std::FILE* file_;
};

// Compresses each axis with an MDZ FieldCompressor and appends the newly
// produced compressed bytes to the file as they become available.
class MdzDumpWriter : public DumpWriter {
 public:
  static Result<std::unique_ptr<MdzDumpWriter>> Open(
      const std::string& path, size_t num_atoms, const core::Options& options);
  ~MdzDumpWriter() override;

  Status WriteSnapshot(const std::vector<Vec3>& positions) override;
  Status Finish() override;

 private:
  MdzDumpWriter(std::FILE* file, size_t num_atoms) : file_(file), n_(num_atoms) {}

  Status FlushNewBytes();

  std::FILE* file_;
  size_t n_;
  std::array<std::unique_ptr<core::FieldCompressor>, 3> compressors_;
  std::array<size_t, 3> flushed_ = {0, 0, 0};
  std::vector<double> scratch_;
};

}  // namespace mdz::md

#endif  // MDZ_MD_DUMP_H_
