#include "md/cell_list.h"

#include <cmath>

namespace mdz::md {

constexpr int CellList::kStencil[14][3];

CellList::CellList(const Box& box, double cutoff)
    : box_(box), cutoff_(cutoff) {
  nx_ = static_cast<int>(std::floor(box.lx() / cutoff));
  ny_ = static_cast<int>(std::floor(box.ly() / cutoff));
  nz_ = static_cast<int>(std::floor(box.lz() / cutoff));
  if (nx_ < 3 || ny_ < 3 || nz_ < 3) {
    brute_ = true;
    nx_ = ny_ = nz_ = 1;
  }
  heads_.assign(static_cast<size_t>(nx_) * ny_ * nz_, -1);
}

void CellList::Build(const std::vector<Vec3>& positions) {
  if (brute_) return;
  heads_.assign(heads_.size(), -1);
  next_.assign(positions.size(), -1);
  for (size_t i = 0; i < positions.size(); ++i) {
    const Vec3 p = box_.Wrap(positions[i]);
    int cx = static_cast<int>(p.x / box_.lx() * nx_);
    int cy = static_cast<int>(p.y / box_.ly() * ny_);
    int cz = static_cast<int>(p.z / box_.lz() * nz_);
    if (cx >= nx_) cx = nx_ - 1;
    if (cy >= ny_) cy = ny_ - 1;
    if (cz >= nz_) cz = nz_ - 1;
    const int cell = CellIndex(cx, cy, cz);
    next_[i] = heads_[cell];
    heads_[cell] = static_cast<int32_t>(i);
  }
}

}  // namespace mdz::md
