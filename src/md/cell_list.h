#ifndef MDZ_MD_CELL_LIST_H_
#define MDZ_MD_CELL_LIST_H_

#include <cstdint>
#include <vector>

#include "md/box.h"
#include "md/vec3.h"

namespace mdz::md {

// Linked-cell neighbor search for short-range potentials: the box is split
// into cells of edge >= cutoff, so all interacting pairs are within the
// 27-cell neighborhood. Rebuilt every step (cheap: O(N)).
class CellList {
 public:
  CellList(const Box& box, double cutoff);

  void Build(const std::vector<Vec3>& positions);

  // Invokes fn(i, j, dr, r2) for every pair with r2 < cutoff^2, i < j,
  // where dr is the minimum-image displacement r_i - r_j.
  template <typename Fn>
  void ForEachPair(const std::vector<Vec3>& positions, Fn&& fn) const {
    const double cutoff2 = cutoff_ * cutoff_;
    if (brute_) {
      // Box too small for a 3x3x3 cell decomposition: O(N^2) fallback.
      for (size_t i = 0; i < positions.size(); ++i) {
        for (size_t j = i + 1; j < positions.size(); ++j) {
          const Vec3 dr = box_.MinImage(positions[i], positions[j]);
          const double r2 = dr.norm2();
          if (r2 < cutoff2) fn(i, j, dr, r2);
        }
      }
      return;
    }
    for (int cz = 0; cz < nz_; ++cz) {
      for (int cy = 0; cy < ny_; ++cy) {
        for (int cx = 0; cx < nx_; ++cx) {
          const int cell = CellIndex(cx, cy, cz);
          // Half the neighbor stencil (13 cells + self) to visit each pair
          // once.
          for (int s = 0; s < 14; ++s) {
            const int ox = kStencil[s][0];
            const int oy = kStencil[s][1];
            const int oz = kStencil[s][2];
            const int other = CellIndex(WrapCell(cx + ox, nx_),
                                        WrapCell(cy + oy, ny_),
                                        WrapCell(cz + oz, nz_));
            const bool same = (other == cell);
            for (int32_t i = heads_[cell]; i >= 0; i = next_[i]) {
              const int32_t j_start = same ? next_[i] : heads_[other];
              for (int32_t j = j_start; j >= 0; j = next_[j]) {
                const Vec3 dr = box_.MinImage(positions[i], positions[j]);
                const double r2 = dr.norm2();
                if (r2 < cutoff2) {
                  fn(static_cast<size_t>(i), static_cast<size_t>(j), dr, r2);
                }
              }
            }
          }
        }
      }
    }
  }

  int num_cells() const { return nx_ * ny_ * nz_; }

 private:
  static int WrapCell(int c, int n) {
    if (c < 0) return c + n;
    if (c >= n) return c - n;
    return c;
  }
  int CellIndex(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }

  // 14 offsets covering each unordered cell pair exactly once.
  static constexpr int kStencil[14][3] = {
      {0, 0, 0},  {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},
      {-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},
      {1, 0, 1},  {-1, 1, 1}, {0, 1, 1},  {1, 1, 1}};

  Box box_;
  double cutoff_;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  bool brute_ = false;
  std::vector<int32_t> heads_;
  std::vector<int32_t> next_;
};

}  // namespace mdz::md

#endif  // MDZ_MD_CELL_LIST_H_
