#ifndef MDZ_MD_HARMONIC_CRYSTAL_H_
#define MDZ_MD_HARMONIC_CRYSTAL_H_

#include <cstdint>
#include <vector>

#include "md/box.h"
#include "md/vec3.h"
#include "util/rng.h"
#include "util/status.h"

namespace mdz::md {

// Harmonic lattice dynamics: atoms on an FCC lattice connected to their
// nearest neighbors by springs, integrated with velocity Verlet and a
// Langevin thermostat. This is the textbook model of thermal vibration in a
// crystal — it produces positions with the level-clustered spatial structure
// and tunable temporal correlation that the MDZ paper characterizes for its
// Copper datasets, but from an actual equation of motion instead of an
// ad-hoc stochastic process.
//
// Reduced units: lattice constant a, spring constant k, atom mass m = 1.
struct HarmonicCrystalOptions {
  int cells = 6;              // FCC cells per edge: N = 4 * cells^3
  double lattice_constant = 3.615;
  double spring_k = 2.0;      // nearest-neighbor spring stiffness
  double temperature = 0.05;  // in units of k * a^2
  double dt = 0.05;
  double gamma = 0.2;         // Langevin friction
  uint64_t seed = 11;
};

class HarmonicCrystal {
 public:
  static Result<HarmonicCrystal> Create(const HarmonicCrystalOptions& options);

  void Run(int steps);

  size_t num_atoms() const { return positions_.size(); }
  const Box& box() const { return box_; }
  const std::vector<Vec3>& positions() const { return positions_; }
  const std::vector<Vec3>& sites() const { return sites_; }

  double kinetic_energy() const;
  double potential_energy() const;
  double instantaneous_temperature() const;

  // Mean squared displacement from the lattice sites (thermal vibration
  // amplitude; stays bounded for a stable crystal).
  double MeanSquaredDisplacementFromSites() const;

 private:
  HarmonicCrystal() = default;

  void ComputeForces();

  HarmonicCrystalOptions options_;
  Box box_;
  std::vector<Vec3> sites_;       // equilibrium lattice positions
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
  std::vector<Vec3> forces_;
  // Neighbor bonds as index pairs with their equilibrium minimum-image
  // displacement (fixed topology: harmonic crystal, no bond breaking).
  struct Bond {
    uint32_t i, j;
    Vec3 rest;  // site_i - site_j (minimum image)
  };
  std::vector<Bond> bonds_;
  Rng rng_{1};
};

}  // namespace mdz::md

#endif  // MDZ_MD_HARMONIC_CRYSTAL_H_
