#ifndef MDZ_MD_LATTICE_H_
#define MDZ_MD_LATTICE_H_

#include <cstddef>
#include <vector>

#include "md/vec3.h"

namespace mdz::md {

// Crystal lattice site builders. Sites are emitted cell-by-cell in
// (i, j, k, basis) order, which is also the dump order the dataset
// generators use — this ordering is what produces the zigzag spatial
// patterns characterized in paper Fig. 3.
//
// `a` is the cubic lattice constant; the box spans nx*a x ny*a x nz*a.

// Face-centred cubic: 4 basis atoms per cell.
std::vector<Vec3> FccLattice(int nx, int ny, int nz, double a);

// Body-centred cubic: 2 basis atoms per cell.
std::vector<Vec3> BccLattice(int nx, int ny, int nz, double a);

// Simple cubic: 1 atom per cell.
std::vector<Vec3> CubicLattice(int nx, int ny, int nz, double a);

// Smallest cell count n such that an FCC block n^3 * 4 >= num_atoms.
int FccCellsForAtoms(size_t num_atoms);
int BccCellsForAtoms(size_t num_atoms);

}  // namespace mdz::md

#endif  // MDZ_MD_LATTICE_H_
