#include "md/dump.h"

#include "util/timer.h"

namespace mdz::md {

// --- RawDumpWriter ----------------------------------------------------------

Result<std::unique_ptr<RawDumpWriter>> RawDumpWriter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open dump file: " + path);
  }
  return std::unique_ptr<RawDumpWriter>(new RawDumpWriter(file));
}

RawDumpWriter::~RawDumpWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RawDumpWriter::WriteSnapshot(const std::vector<Vec3>& positions) {
  WallTimer timer;
  const size_t n = positions.size() * 3;
  const size_t written =
      std::fwrite(positions.data(), sizeof(double), n, file_);
  output_seconds_ += timer.ElapsedSeconds();
  if (written != n) return Status::Internal("short write to raw dump");
  bytes_written_ += n * sizeof(double);
  return Status::OK();
}

Status RawDumpWriter::Finish() {
  WallTimer timer;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  output_seconds_ += timer.ElapsedSeconds();
  return Status::OK();
}

// --- MdzDumpWriter ----------------------------------------------------------

Result<std::unique_ptr<MdzDumpWriter>> MdzDumpWriter::Open(
    const std::string& path, size_t num_atoms, const core::Options& options) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open dump file: " + path);
  }
  auto writer = std::unique_ptr<MdzDumpWriter>(
      new MdzDumpWriter(file, num_atoms));
  for (auto& compressor : writer->compressors_) {
    MDZ_ASSIGN_OR_RETURN(compressor,
                         core::FieldCompressor::Create(num_atoms, options));
  }
  writer->scratch_.resize(num_atoms);
  return writer;
}

MdzDumpWriter::~MdzDumpWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status MdzDumpWriter::FlushNewBytes() {
  for (int axis = 0; axis < 3; ++axis) {
    const std::vector<uint8_t>& out = compressors_[axis]->output();
    const size_t pending = out.size() - flushed_[axis];
    if (pending == 0) continue;
    const size_t written =
        std::fwrite(out.data() + flushed_[axis], 1, pending, file_);
    if (written != pending) {
      return Status::Internal("short write to MDZ dump");
    }
    flushed_[axis] = out.size();
    bytes_written_ += pending;
  }
  return Status::OK();
}

Status MdzDumpWriter::WriteSnapshot(const std::vector<Vec3>& positions) {
  WallTimer timer;
  if (positions.size() != n_) {
    return Status::InvalidArgument("dump snapshot size mismatch");
  }
  for (int axis = 0; axis < 3; ++axis) {
    for (size_t i = 0; i < n_; ++i) {
      const Vec3& p = positions[i];
      scratch_[i] = (axis == 0) ? p.x : (axis == 1) ? p.y : p.z;
    }
    MDZ_RETURN_IF_ERROR(compressors_[axis]->Append(scratch_));
  }
  const Status flush = FlushNewBytes();
  output_seconds_ += timer.ElapsedSeconds();
  return flush;
}

Status MdzDumpWriter::Finish() {
  WallTimer timer;
  for (auto& compressor : compressors_) {
    MDZ_RETURN_IF_ERROR(compressor->Finish());
  }
  MDZ_RETURN_IF_ERROR(FlushNewBytes());
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  output_seconds_ += timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace mdz::md
