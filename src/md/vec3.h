#ifndef MDZ_MD_VEC3_H_
#define MDZ_MD_VEC3_H_

#include <cmath>

namespace mdz::md {

// Minimal 3-vector for the MD engine. Plain struct, value semantics.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  double norm2() const { return x * x + y * y + z * z; }
  double norm() const { return std::sqrt(norm2()); }
};

inline Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
inline Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
inline Vec3 operator*(Vec3 a, double s) { return a *= s; }
inline Vec3 operator*(double s, Vec3 a) { return a *= s; }
inline double Dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

}  // namespace mdz::md

#endif  // MDZ_MD_VEC3_H_
