#ifndef MDZ_MD_BOX_H_
#define MDZ_MD_BOX_H_

#include <cmath>

#include "md/vec3.h"

namespace mdz::md {

// Orthorhombic periodic simulation box.
class Box {
 public:
  Box() = default;
  Box(double lx, double ly, double lz) : l_{lx, ly, lz} {}

  double lx() const { return l_.x; }
  double ly() const { return l_.y; }
  double lz() const { return l_.z; }
  double volume() const { return l_.x * l_.y * l_.z; }

  // Wraps a position into [0, L) per axis.
  Vec3 Wrap(Vec3 p) const {
    p.x -= l_.x * std::floor(p.x / l_.x);
    p.y -= l_.y * std::floor(p.y / l_.y);
    p.z -= l_.z * std::floor(p.z / l_.z);
    return p;
  }

  // Minimum-image displacement a - b.
  Vec3 MinImage(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    d.x -= l_.x * std::nearbyint(d.x / l_.x);
    d.y -= l_.y * std::nearbyint(d.y / l_.y);
    d.z -= l_.z * std::nearbyint(d.z / l_.z);
    return d;
  }

 private:
  Vec3 l_{1.0, 1.0, 1.0};
};

}  // namespace mdz::md

#endif  // MDZ_MD_BOX_H_
