#include "md/lattice.h"

#include <cmath>

namespace mdz::md {

namespace {

std::vector<Vec3> BuildLattice(int nx, int ny, int nz, double a,
                               const Vec3* basis, int basis_count) {
  std::vector<Vec3> sites;
  sites.reserve(static_cast<size_t>(nx) * ny * nz * basis_count);
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < nz; ++k) {
        const Vec3 origin{i * a, j * a, k * a};
        for (int b = 0; b < basis_count; ++b) {
          sites.push_back(origin + a * basis[b]);
        }
      }
    }
  }
  return sites;
}

}  // namespace

std::vector<Vec3> FccLattice(int nx, int ny, int nz, double a) {
  static const Vec3 kBasis[4] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  return BuildLattice(nx, ny, nz, a, kBasis, 4);
}

std::vector<Vec3> BccLattice(int nx, int ny, int nz, double a) {
  static const Vec3 kBasis[2] = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
  return BuildLattice(nx, ny, nz, a, kBasis, 2);
}

std::vector<Vec3> CubicLattice(int nx, int ny, int nz, double a) {
  static const Vec3 kBasis[1] = {{0.0, 0.0, 0.0}};
  return BuildLattice(nx, ny, nz, a, kBasis, 1);
}

int FccCellsForAtoms(size_t num_atoms) {
  int n = 1;
  while (static_cast<size_t>(n) * n * n * 4 < num_atoms) ++n;
  return n;
}

int BccCellsForAtoms(size_t num_atoms) {
  int n = 1;
  while (static_cast<size_t>(n) * n * n * 2 < num_atoms) ++n;
  return n;
}

}  // namespace mdz::md
