#include "md/lj_simulation.h"

#include <cmath>

#include "md/lattice.h"
#include "util/rng.h"
#include "util/timer.h"

namespace mdz::md {

LjSimulation::LjSimulation(const LjOptions& options)
    : options_(options),
      box_(1.0, 1.0, 1.0),
      cells_(Box(1.0, 1.0, 1.0), options.cutoff) {}

Result<LjSimulation> LjSimulation::Create(const LjOptions& options) {
  if (options.cells < 1 || options.density <= 0.0 || options.dt <= 0.0 ||
      options.cutoff <= 0.0) {
    return Status::InvalidArgument("bad LJ simulation options");
  }
  LjSimulation sim(options);
  sim.thermostat_rng_ = Rng(options.seed + 1);

  const size_t n = static_cast<size_t>(options.cells) * options.cells *
                   options.cells * 4;
  // Box edge from the reduced density: rho = N / V.
  const double edge =
      std::cbrt(static_cast<double>(n) / options.density);
  sim.box_ = Box(edge, edge, edge);
  const double a = edge / options.cells;  // FCC lattice constant

  sim.positions_ = FccLattice(options.cells, options.cells, options.cells, a);
  sim.velocities_.resize(n);
  sim.forces_.resize(n);

  // Maxwell-Boltzmann velocities at the target temperature with zero net
  // momentum.
  Rng rng(options.seed);
  const double stddev = std::sqrt(options.temperature);
  Vec3 net{0.0, 0.0, 0.0};
  for (Vec3& v : sim.velocities_) {
    v = {rng.Gaussian(0.0, stddev), rng.Gaussian(0.0, stddev),
         rng.Gaussian(0.0, stddev)};
    net += v;
  }
  net *= 1.0 / static_cast<double>(n);
  for (Vec3& v : sim.velocities_) v -= net;

  sim.cells_ = CellList(sim.box_, options.cutoff);
  sim.ComputeForces();
  return sim;
}

void LjSimulation::ComputeForces() {
  WallTimer timer;
  cells_.Build(positions_);
  for (Vec3& f : forces_) f = {0.0, 0.0, 0.0};
  double pe = 0.0;
  const double cutoff2 = options_.cutoff * options_.cutoff;
  // Energy shift so the potential is continuous at the cutoff.
  const double inv_c6 = 1.0 / (cutoff2 * cutoff2 * cutoff2);
  const double e_shift = 4.0 * (inv_c6 * inv_c6 - inv_c6);

  cells_.ForEachPair(positions_, [&](size_t i, size_t j, const Vec3& dr,
                                     double r2) {
    const double inv_r2 = 1.0 / r2;
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const double inv_r12 = inv_r6 * inv_r6;
    // F(r) = 24 (2/r^12 - 1/r^6) / r^2 * dr
    const double f_scalar = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
    const Vec3 f = f_scalar * dr;
    forces_[i] += f;
    forces_[j] -= f;
    pe += 4.0 * (inv_r12 - inv_r6) - e_shift;
  });
  (void)cutoff2;
  potential_energy_ = pe;
  force_seconds_ += timer.ElapsedSeconds();
}

double LjSimulation::kinetic_energy() const {
  double ke = 0.0;
  for (const Vec3& v : velocities_) ke += 0.5 * v.norm2();
  return ke;
}

double LjSimulation::instantaneous_temperature() const {
  // 3N degrees of freedom (momentum constraint ignored; N is large).
  return 2.0 * kinetic_energy() /
         (3.0 * static_cast<double>(positions_.size()));
}

void LjSimulation::ApplyThermostat() {
  switch (options_.thermostat) {
    case LjOptions::Thermostat::kNone:
      return;
    case LjOptions::Thermostat::kBerendsen: {
      const double t_now = instantaneous_temperature();
      if (t_now <= 0.0) return;
      const double lambda = std::sqrt(
          1.0 + options_.dt / options_.thermostat_coupling *
                    (options_.temperature / t_now - 1.0));
      for (Vec3& v : velocities_) v *= lambda;
      return;
    }
    case LjOptions::Thermostat::kLangevin: {
      // BAOAB-style stochastic velocity update appended to the Verlet step.
      const double gamma = options_.thermostat_coupling;
      const double c1 = std::exp(-gamma * options_.dt);
      const double c2 =
          std::sqrt(options_.temperature * (1.0 - c1 * c1));
      for (Vec3& v : velocities_) {
        v = c1 * v + Vec3{c2 * thermostat_rng_.Gaussian(),
                          c2 * thermostat_rng_.Gaussian(),
                          c2 * thermostat_rng_.Gaussian()};
      }
      return;
    }
  }
}

void LjSimulation::Run(int steps) {
  const double dt = options_.dt;
  const double half_dt = 0.5 * dt;
  for (int s = 0; s < steps; ++s) {
    WallTimer timer;
    // Velocity Verlet: half-kick, drift, force, half-kick.
    for (size_t i = 0; i < positions_.size(); ++i) {
      velocities_[i] += half_dt * forces_[i];
      positions_[i] = box_.Wrap(positions_[i] + dt * velocities_[i]);
    }
    integrate_seconds_ += timer.ElapsedSeconds();
    ComputeForces();
    timer.Reset();
    for (size_t i = 0; i < velocities_.size(); ++i) {
      velocities_[i] += half_dt * forces_[i];
    }
    ApplyThermostat();
    ++step_;
    integrate_seconds_ += timer.ElapsedSeconds();
  }
}

}  // namespace mdz::md
