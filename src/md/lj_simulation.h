#ifndef MDZ_MD_LJ_SIMULATION_H_
#define MDZ_MD_LJ_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "md/box.h"
#include "md/cell_list.h"
#include "md/vec3.h"
#include "util/rng.h"
#include "util/status.h"

namespace mdz::md {

// Lennard-Jones liquid simulation in reduced units (sigma = epsilon = m = 1),
// mirroring the LAMMPS "LJ liquid" benchmark the paper uses for its LJ
// dataset and the Table VII integration experiment: FCC-initialized box at a
// given reduced density/temperature, truncated 12-6 potential, velocity
// Verlet, optional Berendsen or Langevin thermostat.
struct LjOptions {
  int cells = 10;            // FCC cells per edge: N = 4 * cells^3
  double density = 0.8442;   // reduced density (LAMMPS benchmark value)
  double temperature = 0.728;
  double dt = 0.005;
  double cutoff = 2.5;
  uint64_t seed = 2022;

  enum class Thermostat { kNone, kBerendsen, kLangevin };
  Thermostat thermostat = Thermostat::kBerendsen;
  double thermostat_coupling = 0.1;  // Berendsen tau (time) / Langevin gamma
};

class LjSimulation {
 public:
  static Result<LjSimulation> Create(const LjOptions& options);

  // Advances `steps` timesteps.
  void Run(int steps);

  size_t num_atoms() const { return positions_.size(); }
  const Box& box() const { return box_; }
  const std::vector<Vec3>& positions() const { return positions_; }
  const std::vector<Vec3>& velocities() const { return velocities_; }

  double kinetic_energy() const;
  double potential_energy() const { return potential_energy_; }
  double total_energy() const { return kinetic_energy() + potential_energy_; }
  double instantaneous_temperature() const;
  int64_t step_count() const { return step_; }

  // Wall-clock accounting for the Table VII runtime-breakdown experiment.
  double force_seconds() const { return force_seconds_; }
  double integrate_seconds() const { return integrate_seconds_; }

 private:
  explicit LjSimulation(const LjOptions& options);

  void ComputeForces();
  void ApplyThermostat();

  LjOptions options_;
  Box box_;
  CellList cells_;
  Rng thermostat_rng_{1};
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
  std::vector<Vec3> forces_;
  double potential_energy_ = 0.0;
  int64_t step_ = 0;
  double force_seconds_ = 0.0;
  double integrate_seconds_ = 0.0;
};

}  // namespace mdz::md

#endif  // MDZ_MD_LJ_SIMULATION_H_
