#include "md/harmonic_crystal.h"

#include <cmath>

#include "md/cell_list.h"
#include "md/lattice.h"

namespace mdz::md {

Result<HarmonicCrystal> HarmonicCrystal::Create(
    const HarmonicCrystalOptions& options) {
  if (options.cells < 2 || options.spring_k <= 0.0 || options.dt <= 0.0 ||
      options.lattice_constant <= 0.0) {
    return Status::InvalidArgument("bad harmonic crystal options");
  }
  HarmonicCrystal crystal;
  crystal.options_ = options;
  crystal.rng_ = Rng(options.seed);

  const double a = options.lattice_constant;
  const double edge = options.cells * a;
  crystal.box_ = Box(edge, edge, edge);
  crystal.sites_ =
      FccLattice(options.cells, options.cells, options.cells, a);
  crystal.positions_ = crystal.sites_;
  const size_t n = crystal.sites_.size();
  crystal.velocities_.resize(n);
  crystal.forces_.resize(n);

  // Bond list: FCC nearest neighbors at a/sqrt(2); use a cutoff halfway to
  // the second shell (a).
  const double nn = a / std::sqrt(2.0);
  const double cutoff = 0.5 * (nn + a);
  CellList cells(crystal.box_, cutoff);
  cells.Build(crystal.sites_);
  cells.ForEachPair(crystal.sites_,
                    [&](size_t i, size_t j, const Vec3& dr, double) {
                      crystal.bonds_.push_back({static_cast<uint32_t>(i),
                                                static_cast<uint32_t>(j), dr});
                    });

  // Maxwell-Boltzmann velocities at the target temperature.
  const double stddev = std::sqrt(options.temperature);
  for (Vec3& v : crystal.velocities_) {
    v = {crystal.rng_.Gaussian(0.0, stddev),
         crystal.rng_.Gaussian(0.0, stddev),
         crystal.rng_.Gaussian(0.0, stddev)};
  }
  crystal.ComputeForces();
  return crystal;
}

void HarmonicCrystal::ComputeForces() {
  for (Vec3& f : forces_) f = {0.0, 0.0, 0.0};
  const double k = options_.spring_k;
  for (const Bond& bond : bonds_) {
    // Displacement relative to the rest geometry (harmonic approximation on
    // the bond vector, valid for small vibrations).
    const Vec3 dr = box_.MinImage(positions_[bond.i], positions_[bond.j]);
    const Vec3 stretch = dr - bond.rest;
    const Vec3 f = (-k) * stretch;
    forces_[bond.i] += f;
    forces_[bond.j] -= f;
  }
}

double HarmonicCrystal::kinetic_energy() const {
  double ke = 0.0;
  for (const Vec3& v : velocities_) ke += 0.5 * v.norm2();
  return ke;
}

double HarmonicCrystal::potential_energy() const {
  double pe = 0.0;
  for (const Bond& bond : bonds_) {
    const Vec3 dr = box_.MinImage(positions_[bond.i], positions_[bond.j]);
    pe += 0.5 * options_.spring_k * (dr - bond.rest).norm2();
  }
  return pe;
}

double HarmonicCrystal::instantaneous_temperature() const {
  return 2.0 * kinetic_energy() / (3.0 * static_cast<double>(num_atoms()));
}

double HarmonicCrystal::MeanSquaredDisplacementFromSites() const {
  double sum = 0.0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    sum += box_.MinImage(positions_[i], sites_[i]).norm2();
  }
  return sum / static_cast<double>(positions_.size());
}

void HarmonicCrystal::Run(int steps) {
  const double dt = options_.dt;
  const double half_dt = 0.5 * dt;
  const double c1 = std::exp(-options_.gamma * dt);
  const double c2 = std::sqrt(options_.temperature * (1.0 - c1 * c1));
  for (int s = 0; s < steps; ++s) {
    for (size_t i = 0; i < positions_.size(); ++i) {
      velocities_[i] += half_dt * forces_[i];
      // No wrapping: atoms vibrate around fixed sites and never migrate, and
      // unwrapped coordinates keep the dumped streams continuous (as in
      // LAMMPS' unwrapped dump of a solid).
      positions_[i] += dt * velocities_[i];
    }
    ComputeForces();
    for (size_t i = 0; i < velocities_.size(); ++i) {
      velocities_[i] += half_dt * forces_[i];
      // Langevin (OU) velocity refresh keeps the canonical ensemble.
      velocities_[i] = c1 * velocities_[i] +
                       Vec3{c2 * rng_.Gaussian(), c2 * rng_.Gaussian(),
                            c2 * rng_.Gaussian()};
    }
  }
}

}  // namespace mdz::md
