#ifndef MDZ_SERVE_FLEET_H_
#define MDZ_SERVE_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "archive/frame_cache.h"
#include "archive/reader.h"
#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::core {
class ThreadPool;
}

namespace mdz::serve {

// One open incarnation of one archive. Immutable once installed; requests
// hold it by shared_ptr, so a concurrent append (which installs a successor
// and invalidates this generation's cached frames) never pulls the file out
// from under an in-flight read. Reads against an old incarnation stay
// byte-correct: frames are append-only — a reseal only overwrites the old
// footer region, which lies beyond every frame this reader can touch and
// was copied into memory at Open.
struct OpenArchive {
  std::string name;  // fleet-relative
  uint64_t generation = 0;
  std::unique_ptr<archive::ArchiveReader> reader;
};

// ArchiveFleet maps fleet-relative names to open archives under one root
// directory, with a bounded handle cache (open fds + parsed footers are not
// free at thousands of archives) and per-archive append serialization.
// Every open registers a fresh generation in the shared FrameCache; appends
// reseal the file, install a successor incarnation under a new generation,
// and invalidate the old one — cached frames from a resealed archive can
// never be served stale.
class ArchiveFleet {
 public:
  struct Options {
    std::string root;
    size_t max_open = 64;  // bounded open handles (LRU recycled)
    archive::FrameCache* cache = nullptr;  // required; not owned
    core::ThreadPool* pool = nullptr;      // append compression; may be null
  };

  explicit ArchiveFleet(const Options& options);

  ArchiveFleet(const ArchiveFleet&) = delete;
  ArchiveFleet& operator=(const ArchiveFleet&) = delete;

  // True for names safe to join under the root: relative, no "..", no
  // leading '/', no empty segments, printable ASCII.
  static bool ValidName(const std::string& name);

  // Returns the current incarnation, opening it on miss (FailedPrecondition
  // "no such archive" when the file is absent — the server maps that to
  // NOT_FOUND; InvalidArgument for v1 files). A miss-path open serializes on
  // the archive's append lock: reopening from disk mid-reseal would read a
  // half-written footer.
  Result<std::shared_ptr<const OpenArchive>> Acquire(const std::string& name);

  struct AppendResult {
    uint64_t total_snapshots = 0;
    uint64_t generation = 0;
  };
  // Appends `snapshots` and reseals. Appends to the same archive are
  // serialized; reads proceed concurrently against the old incarnation.
  Result<AppendResult> Append(const std::string& name,
                              const std::vector<core::Snapshot>& snapshots);

  // Drops every open handle (SIGHUP reload): cached frames are invalidated
  // and the next Acquire reopens from disk under a fresh generation.
  void Reload();

  size_t open_handles() const;
  void set_max_open(size_t max_open);

 private:
  struct Entry {
    std::shared_ptr<const OpenArchive> open;  // null when recycled
    uint64_t lru_seq = 0;
    // Serializes appends per archive; held across compression, so it lives
    // outside the fleet lock.
    std::shared_ptr<std::mutex> append_mu = std::make_shared<std::mutex>();
  };

  std::string PathFor(const std::string& name) const;
  Result<std::shared_ptr<const OpenArchive>> OpenLocked(
      const std::string& name);
  // Recycles least-recently-acquired handles beyond max_open_; returns the
  // generations to invalidate (done by the caller outside the lock).
  std::vector<uint64_t> EnforceBoundLocked();

  const std::string root_;
  archive::FrameCache* const cache_;
  core::ThreadPool* const pool_;

  mutable std::mutex mu_;
  size_t max_open_;
  uint64_t next_lru_seq_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace mdz::serve

#endif  // MDZ_SERVE_FLEET_H_
