#ifndef MDZ_SERVE_SERVER_H_
#define MDZ_SERVE_SERVER_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "archive/frame_cache.h"
#include "obs/telemetry_server.h"
#include "serve/fleet.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "util/status.h"

namespace mdz::core {
class ThreadPool;
}
namespace mdz::obs {
class Counter;
class MetricsRegistry;
}  // namespace mdz::obs

namespace mdz::serve {

// Daemon configuration, loadable from a `key value` text file (one pair per
// line, '#' comments):
//
//   cache_bytes        268435456
//   max_open_archives  64
//   interactive_slots  4
//   background_slots   1
//   max_queue          256
//   default_deadline_ms 30000
//   max_connections    64
//   quota default      max_inflight=16 max_bytes=268435456
//   quota <tenant>     max_inflight=4  max_bytes=67108864
struct ServerConfig {
  size_t cache_bytes = 256ull << 20;
  size_t max_open_archives = 64;
  size_t interactive_slots = 4;
  size_t background_slots = 1;
  size_t max_queue = 256;
  uint64_t default_deadline_ms = 30000;
  size_t max_connections = 64;
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
};

Result<ServerConfig> ParseServerConfig(const std::string& text);
Result<ServerConfig> LoadServerConfig(const std::string& path);

// ArchiveServer is the mdzd daemon core: it owns the shared frame cache,
// the archive fleet, and the request scheduler, accepts connections on a
// binary endpoint, and executes requests on the injected thread pool. All
// collaborators (pool, metrics registry) are injectable, so tests run
// hermetic instances side by side; CLI runs pass the process-wide ones.
//
// Lifecycle: Start() binds and begins accepting (ready() true). Reload()
// re-reads limits and drops idle fleet handles without dropping
// connections. Drain() — the SIGTERM path — stops accepting connections
// and requests (in-flight requests finish, late ones get SHUTTING_DOWN,
// ready() goes false for /healthz), then closes. Appends reseal the
// archive synchronously inside their request, so a drained server leaves
// every archive sealed on disk by construction.
class ArchiveServer {
 public:
  struct Options {
    obs::ListenAddress listen;  // binary protocol endpoint
    std::string root;           // fleet root directory
    ServerConfig config;
    core::ThreadPool* pool = nullptr;          // default: ThreadPool::Shared()
    obs::MetricsRegistry* registry = nullptr;  // default: process-global
  };

  explicit ArchiveServer(const Options& options);
  ~ArchiveServer();  // implies Drain()

  ArchiveServer(const ArchiveServer&) = delete;
  ArchiveServer& operator=(const ArchiveServer&) = delete;

  Status Start();

  // Graceful shutdown: stop accepting, finish in-flight requests, close
  // every connection. Idempotent.
  void Drain();

  // SIGHUP: apply `config` (quotas, slots, handle bound; cache_bytes is
  // fixed at Start) and drop idle fleet handles so renamed/replaced files
  // are picked up.
  void Reload(const ServerConfig& config);

  // Accepting connections and not draining. Wire to
  // TelemetryServer::SetReadyProbe for /healthz readiness.
  bool ready() const;

  uint16_t port() const { return port_; }

  ArchiveFleet& fleet() { return *fleet_; }
  archive::FrameCache& cache() { return *cache_; }
  RequestScheduler& scheduler() { return *scheduler_; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  // The fd closes with the last reference: late scheduler handlers may
  // outlive the reader thread, and closing early would let the kernel reuse
  // the fd number under a pending reply write.
  struct Connection {
    ~Connection() {
      if (fd >= 0) ::close(fd);
    }
    int fd = -1;
    std::mutex write_mu;  // one reply frame at a time
    std::atomic<bool> closed{false};
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> connection);
  // Runs the request synchronously and returns the reply (scheduler
  // dispatch happens in ConnectionLoop).
  Reply HandleRequest(const Request& request);
  void SendReply(const std::shared_ptr<Connection>& connection,
                 const Reply& reply);
  static ReplyStatus MapStatus(const Status& status);

  const obs::ListenAddress listen_;
  const std::string root_;
  ServerConfig config_;
  core::ThreadPool* const pool_;
  obs::MetricsRegistry* const registry_;

  std::unique_ptr<archive::FrameCache> cache_;
  std::unique_ptr<ArchiveFleet> fleet_;
  std::unique_ptr<RequestScheduler> scheduler_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> live_connections_{0};
  std::thread accept_thread_;

  std::mutex connections_mu_;
  std::list<std::pair<std::shared_ptr<Connection>, std::thread>> connections_;

  obs::Counter* bytes_out_counter_ = nullptr;
  obs::Counter* bytes_in_counter_ = nullptr;
  obs::Counter* errors_counter_ = nullptr;
};

}  // namespace mdz::serve

#endif  // MDZ_SERVE_SERVER_H_
