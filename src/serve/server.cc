#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace mdz::serve {

// --- Configuration ----------------------------------------------------------

namespace {

Status ParseUintField(const std::string& token, const std::string& key,
                      uint64_t* out) {
  if (token.size() <= key.size() + 1 || token.compare(0, key.size(), key) != 0 ||
      token[key.size()] != '=') {
    return Status::InvalidArgument("expected " + key + "=<n>, got '" + token +
                                   "'");
  }
  uint64_t value = 0;
  for (size_t i = key.size() + 1; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric value in '" + token + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Result<ServerConfig> ParseServerConfig(const std::string& text) {
  ServerConfig config;
  std::istringstream stream(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;  // blank / comment-only line
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("config line " +
                                     std::to_string(line_number) + ": " + why);
    };
    if (key == "quota") {
      std::string tenant, inflight_tok, bytes_tok;
      if (!(tokens >> tenant >> inflight_tok >> bytes_tok)) {
        return fail("quota needs: quota <tenant> max_inflight=N max_bytes=N");
      }
      TenantQuota quota;
      uint64_t inflight = 0, bytes = 0;
      Status s = ParseUintField(inflight_tok, "max_inflight", &inflight);
      if (s.ok()) s = ParseUintField(bytes_tok, "max_bytes", &bytes);
      if (!s.ok()) return fail(s.message());
      quota.max_inflight = static_cast<uint32_t>(inflight);
      quota.max_bytes = bytes;
      if (tenant == "default") {
        config.default_quota = quota;
      } else {
        config.tenant_quotas[tenant] = quota;
      }
    } else {
      uint64_t value = 0;
      std::string value_tok;
      if (!(tokens >> value_tok)) return fail("missing value for " + key);
      for (char c : value_tok) {
        if (c < '0' || c > '9') return fail("non-numeric value for " + key);
        value = value * 10 + static_cast<uint64_t>(c - '0');
      }
      if (key == "cache_bytes") {
        config.cache_bytes = value;
      } else if (key == "max_open_archives") {
        config.max_open_archives = value;
      } else if (key == "interactive_slots") {
        config.interactive_slots = value;
      } else if (key == "background_slots") {
        config.background_slots = value;
      } else if (key == "max_queue") {
        config.max_queue = value;
      } else if (key == "default_deadline_ms") {
        config.default_deadline_ms = value;
      } else if (key == "max_connections") {
        config.max_connections = value;
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    std::string extra;
    if (tokens >> extra) return fail("trailing token '" + extra + "'");
  }
  return config;
}

Result<ServerConfig> LoadServerConfig(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Internal("cannot read config: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseServerConfig(contents.str());
}

// --- ArchiveServer ----------------------------------------------------------

ArchiveServer::ArchiveServer(const Options& options)
    : listen_(options.listen),
      root_(options.root),
      config_(options.config),
      pool_(options.pool != nullptr ? options.pool
                                    : &core::ThreadPool::Shared()),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::MetricsRegistry::Global()) {
}

ArchiveServer::~ArchiveServer() { Drain(); }

Status ArchiveServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  bytes_in_counter_ = registry_->GetCounter("serve/bytes_in");
  bytes_out_counter_ = registry_->GetCounter("serve/bytes_out");
  errors_counter_ = registry_->GetCounter("serve/protocol_errors");

  archive::FrameCache::Options cache_options;
  cache_options.byte_budget = config_.cache_bytes;
  cache_options.admission = true;
  cache_options.bytes_gauge = registry_->GetGauge("cache/bytes_in_use");
  cache_ = std::make_unique<archive::FrameCache>(cache_options);

  ArchiveFleet::Options fleet_options;
  fleet_options.root = root_;
  fleet_options.max_open = config_.max_open_archives;
  fleet_options.cache = cache_.get();
  fleet_options.pool = pool_;
  fleet_ = std::make_unique<ArchiveFleet>(fleet_options);

  RequestScheduler::Options scheduler_options;
  scheduler_options.pool = pool_;
  scheduler_options.interactive_slots = config_.interactive_slots;
  scheduler_options.background_slots = config_.background_slots;
  scheduler_options.max_queue = config_.max_queue;
  scheduler_options.default_deadline_ms = config_.default_deadline_ms;
  scheduler_options.default_quota = config_.default_quota;
  scheduler_options.tenant_quotas = config_.tenant_quotas;
  scheduler_options.registry = registry_;
  scheduler_ = std::make_unique<RequestScheduler>(scheduler_options);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listen_.port);
  const std::string host =
      listen_.host == "localhost" ? "127.0.0.1" : listen_.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "--listen host is not a valid IPv4 address: " + listen_.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind failed for " + listen_.host + ":" +
                            std::to_string(listen_.port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::Internal("listen failed for " + listen_.host + ":" +
                            std::to_string(listen_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = listen_.port;
  }

  listen_fd_ = fd;
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

bool ArchiveServer::ready() const {
  return running_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire);
}

void ArchiveServer::Reload(const ServerConfig& config) {
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    config_.max_connections = config.max_connections;
  }
  if (scheduler_ != nullptr) {
    scheduler_->UpdateLimits(config.interactive_slots,
                             config.background_slots, config.max_queue,
                             config.default_quota, config.tenant_quotas);
  }
  if (fleet_ != nullptr) {
    fleet_->set_max_open(config.max_open_archives);
    fleet_->Reload();
  }
}

void ArchiveServer::Drain() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Finish everything admitted so far; Submits from here on get
  // SHUTTING_DOWN replies.
  scheduler_->Drain();
  // Unblock connection readers waiting in recv and join them.
  std::list<std::pair<std::shared_ptr<Connection>, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& [connection, thread] : connections) {
    connection->closed.store(true, std::memory_order_release);
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& [connection, thread] : connections) {
    if (thread.joinable()) thread.join();
    // The fd itself closes with the Connection's last reference.
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void ArchiveServer::AcceptLoop() {
  obs::SetTimelineThreadName("serve-accept");
  obs::Gauge* connections_gauge = registry_->GetGauge("serve/connections");
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    // Reap finished connections so a long-lived daemon's list stays bounded
    // by live connections, not by total connections ever accepted.
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->first->closed.load(std::memory_order_acquire)) {
          if (it->second.joinable()) it->second.join();
          it = connections_.erase(it);  // fd closes with the last reference
        } else {
          ++it;
        }
      }
      connections_gauge->Set(static_cast<int64_t>(connections_.size()));
    }
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (connections_.size() >= config_.max_connections) {
      // Connection-level backpressure: no protocol state yet, just refuse.
      ::close(client);
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = client;
    connections_.emplace_back(
        connection, std::thread([this, connection] {
          ConnectionLoop(connection);
        }));
    connections_gauge->Set(static_cast<int64_t>(connections_.size()));
  }
}

ReplyStatus ArchiveServer::MapStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ReplyStatus::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ReplyStatus::kInvalid;
    case StatusCode::kCorruption:
      return ReplyStatus::kCorrupt;
    case StatusCode::kFailedPrecondition:
      return status.message().rfind("no such archive", 0) == 0
                 ? ReplyStatus::kNotFound
                 : ReplyStatus::kInvalid;
    default:
      return ReplyStatus::kError;
  }
}

void ArchiveServer::SendReply(const std::shared_ptr<Connection>& connection,
                              const Reply& reply) {
  const std::vector<uint8_t> payload = EncodeReply(reply);
  std::lock_guard<std::mutex> lock(connection->write_mu);
  if (connection->closed.load(std::memory_order_acquire)) return;
  const Status s = WriteFrame(connection->fd, payload);
  if (s.ok()) {
    bytes_out_counter_->Add(payload.size() + 4);
  } else {
    // Peer is gone; stop the reader too.
    connection->closed.store(true, std::memory_order_release);
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

namespace {

// Declared request cost for tenant byte-quota accounting. Extract size is
// known exactly when the particle range is explicit; a particle_count of 0
// (whole snapshot) is estimated at 1024 particles — quota-sensitive tenants
// should pass explicit ranges (docs/SERVICE.md).
uint64_t RequestCost(const Request& request) {
  switch (request.op) {
    case Op::kExtract: {
      const uint64_t particles =
          request.particle_count != 0 ? request.particle_count : 1024;
      return request.count * particles * 3 * sizeof(double);
    }
    case Op::kAppend:
      return request.append_data.size() * sizeof(double);
    default:
      return 4096;  // nominal: stat/index/open/audit replies are small
  }
}

Lane LaneFor(Op op) {
  switch (op) {
    case Op::kAppend:
    case Op::kAudit:
      return Lane::kBackground;
    default:
      return Lane::kInteractive;
  }
}

}  // namespace

void ArchiveServer::ConnectionLoop(std::shared_ptr<Connection> connection) {
  obs::SetTimelineThreadName("serve-conn");
  while (!connection->closed.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(connection->fd);
    if (!frame.ok()) {
      // OutOfRange = clean close; anything else is a protocol error worth
      // counting. Either way the framing is unrecoverable: close.
      if (frame.status().code() != StatusCode::kOutOfRange &&
          !connection->closed.load(std::memory_order_acquire)) {
        errors_counter_->Increment();
      }
      break;
    }
    bytes_in_counter_->Add(frame->size() + 4);
    auto decoded = DecodeRequest(*frame);
    if (!decoded.ok()) {
      errors_counter_->Increment();
      Reply reply;
      reply.status = ReplyStatus::kInvalid;
      reply.error = decoded.status().message();
      SendReply(connection, reply);
      break;  // framing may be desynchronized; drop the connection
    }
    auto request = std::make_shared<Request>(std::move(decoded).value());
    Reply immediate;
    immediate.op = request->op;
    immediate.request_id = request->request_id;
    RejectReason reason = RejectReason::kNone;
    const bool admitted = scheduler_->Submit(
        LaneFor(request->op), request->tenant, request->deadline_ms,
        RequestCost(*request),
        [this, connection, request](bool expired) {
          Reply reply;
          reply.op = request->op;
          reply.request_id = request->request_id;
          if (expired) {
            reply.status = ReplyStatus::kDeadline;
            reply.error = "deadline expired before dispatch";
          } else {
            reply = HandleRequest(*request);
          }
          SendReply(connection, reply);
        },
        &reason);
    if (!admitted) {
      immediate.status = reason == RejectReason::kShuttingDown
                             ? ReplyStatus::kShuttingDown
                             : ReplyStatus::kBusy;
      switch (reason) {
        case RejectReason::kQueueFull:
          immediate.error = "queue full";
          break;
        case RejectReason::kTenantInflight:
          immediate.error = "tenant over in-flight quota";
          break;
        case RejectReason::kTenantBytes:
          immediate.error = "tenant over byte quota";
          break;
        default:
          immediate.error = "server draining";
          break;
      }
      SendReply(connection, immediate);
    }
  }
  connection->closed.store(true, std::memory_order_release);
}

Reply ArchiveServer::HandleRequest(const Request& request) {
  MDZ_SPAN_ARGS("serve_request", "op", static_cast<uint64_t>(request.op));
  Reply reply;
  reply.op = request.op;
  reply.request_id = request.request_id;

  const auto fail = [&](const Status& status) {
    reply.status = MapStatus(status);
    reply.error = status.ToString();
    return reply;
  };

  // Append mutates; everything else reads through a shared handle.
  if (request.op == Op::kAppend) {
    if (request.append_snapshots == 0 || request.append_particles == 0 ||
        request.append_data.size() !=
            static_cast<size_t>(request.append_snapshots) * 3 *
                request.append_particles) {
      return fail(Status::InvalidArgument("malformed append payload"));
    }
    std::vector<core::Snapshot> snapshots(request.append_snapshots);
    const double* src = request.append_data.data();
    for (core::Snapshot& s : snapshots) {
      for (int axis = 0; axis < 3; ++axis) {
        s.axes[axis].assign(src, src + request.append_particles);
        src += request.append_particles;
      }
    }
    auto appended = fleet_->Append(request.archive, snapshots);
    if (!appended.ok()) return fail(appended.status());
    reply.info.num_snapshots = appended->total_snapshots;
    reply.info.num_particles = request.append_particles;
    reply.info.generation = appended->generation;
    auto handle = fleet_->Acquire(request.archive);
    if (handle.ok()) {
      reply.info.num_frames = (*handle)->reader->footer().frames.size();
      const auto& box = (*handle)->reader->box();
      for (int i = 0; i < 3; ++i) reply.info.box[i] = box[i];
      reply.info.name = (*handle)->reader->name();
    }
    return reply;
  }

  auto handle = fleet_->Acquire(request.archive);
  if (!handle.ok()) return fail(handle.status());
  const archive::ArchiveReader& reader = *(*handle)->reader;

  switch (request.op) {
    case Op::kOpen:
    case Op::kStat: {
      reply.info.num_snapshots = reader.num_snapshots();
      reply.info.num_particles = reader.num_particles();
      reply.info.num_frames = reader.footer().frames.size();
      reply.info.generation = (*handle)->generation;
      for (int i = 0; i < 3; ++i) reply.info.box[i] = reader.box()[i];
      reply.info.name = reader.name();
      break;
    }
    case Op::kIndex: {
      reply.index.reserve(reader.footer().frames.size());
      for (const archive::FrameInfo& f : reader.footer().frames) {
        FrameEntry entry;
        entry.axis = f.axis;
        entry.method = static_cast<uint8_t>(f.method);
        entry.first_snapshot = f.first_snapshot;
        entry.s_count = f.s_count;
        entry.frame_size = f.frame_size;
        reply.index.push_back(entry);
      }
      break;
    }
    case Op::kExtract: {
      const uint64_t particles =
          request.particle_count != 0
              ? request.particle_count
              : reader.num_particles() - std::min<uint64_t>(
                                             request.first_particle,
                                             reader.num_particles());
      auto snapshots = (*handle)->reader->ReadParticles(
          request.first, request.count, request.first_particle, particles);
      if (!snapshots.ok()) return fail(snapshots.status());
      reply.num_snapshots = static_cast<uint32_t>(request.count);
      reply.num_particles = static_cast<uint32_t>(particles);
      reply.data.reserve(snapshots->size() * 3 * particles);
      for (const core::Snapshot& s : *snapshots) {
        for (int axis = 0; axis < 3; ++axis) {
          reply.data.insert(reply.data.end(), s.axes[axis].begin(),
                            s.axes[axis].end());
        }
      }
      break;
    }
    case Op::kAudit: {
      // Reassemble CRC-checks every frame without decoding payloads: a
      // cheap integrity scrub of the whole file.
      auto streams = (*handle)->reader->Reassemble();
      if (!streams.ok()) return fail(streams.status());
      reply.audit_frames = reader.footer().frames.size();
      for (int axis = 0; axis < 3; ++axis) {
        reply.audit_bytes += streams->axes[axis].size();
      }
      break;
    }
    default:
      return fail(Status::Internal("unhandled op"));
  }
  return reply;
}

}  // namespace mdz::serve
