#ifndef MDZ_SERVE_PROTOCOL_H_
#define MDZ_SERVE_PROTOCOL_H_

// Wire protocol for the mdz archive service (docs/SERVICE.md).
//
// Every message is a length-prefixed binary frame:
//
//   u32 length   (little-endian, bytes that follow; excludes itself)
//   payload      (request or reply, layouts below)
//
// Request payload:
//   u8   op            Op enum
//   u64  request_id    client-chosen, echoed verbatim in the reply
//   u32  deadline_ms   relative deadline; 0 = server default
//   u16  tenant_len    + tenant bytes (quota accounting key)
//   u16  archive_len   + archive bytes (fleet-relative name)
//   op-specific body:
//     extract: u64 first, u64 count, u64 first_particle, u64 particle_count
//              (particle_count 0 = every particle)
//     append:  u32 num_snapshots, u32 num_particles, then
//              num_snapshots x 3 x num_particles f64 values, snapshot-major,
//              axes x,y,z per snapshot
//     open/stat/index/audit: empty
//
// Reply payload:
//   u8   op            echoed request op
//   u8   status        ReplyStatus enum
//   u64  request_id    echoed
//   body:
//     non-OK: u16 message_len + message bytes
//     OK extract: u32 num_snapshots, u32 num_particles, then the f64 values
//                 in the same snapshot-major x,y,z layout as append
//     OK open/stat/append: u64 num_snapshots, u64 num_particles,
//                 u64 num_frames, u64 generation, 3 x f64 box,
//                 u16 name_len + name bytes
//     OK index: u32 num_frames, then per frame: u8 axis, u8 method,
//                 u64 first_snapshot, u64 s_count, u64 frame_size
//     OK audit: u64 frames_checked, u64 payload_bytes
//
// All integers are little-endian; doubles are raw IEEE-754 bit patterns, so
// an extract reply is byte-identical to the values ArchiveReader returns.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace mdz::serve {

// Frames larger than this are rejected on both sides: a defense against
// allocating unbounded memory off one corrupt length prefix.
inline constexpr size_t kMaxFrameBytes = size_t{1} << 30;

enum class Op : uint8_t {
  kOpen = 1,     // load into the fleet and report stats
  kStat = 2,     // footer summary + current generation
  kIndex = 3,    // frame table
  kExtract = 4,  // snapshot/particle range
  kAppend = 5,   // append snapshots, reseal, bump generation
  kAudit = 6,    // CRC-check every frame
};

enum class ReplyStatus : uint8_t {
  kOk = 0,
  kBusy = 1,          // backpressure: queue full or tenant over quota (429)
  kNotFound = 2,      // archive name not present under the fleet root
  kInvalid = 3,       // malformed request / range out of bounds / v1 archive
  kCorrupt = 4,       // archive failed CRC or structural validation
  kDeadline = 5,      // deadline expired before the request was dispatched
  kShuttingDown = 6,  // server is draining; retry elsewhere
  kError = 7,         // internal error (I/O, ...)
};

// Human-readable names for logs and the CLI.
std::string_view OpName(Op op);
std::string_view ReplyStatusName(ReplyStatus status);

struct Request {
  Op op = Op::kStat;
  uint64_t request_id = 0;
  uint32_t deadline_ms = 0;
  std::string tenant;
  std::string archive;
  // extract
  uint64_t first = 0;
  uint64_t count = 0;
  uint64_t first_particle = 0;
  uint64_t particle_count = 0;  // 0 = all
  // append
  uint32_t append_snapshots = 0;
  uint32_t append_particles = 0;
  std::vector<double> append_data;  // snapshot-major, x,y,z per snapshot
};

struct ArchiveInfo {
  uint64_t num_snapshots = 0;
  uint64_t num_particles = 0;
  uint64_t num_frames = 0;
  uint64_t generation = 0;
  double box[3] = {0, 0, 0};
  std::string name;
};

struct FrameEntry {
  uint8_t axis = 0;
  uint8_t method = 0;
  uint64_t first_snapshot = 0;
  uint64_t s_count = 0;
  uint64_t frame_size = 0;
};

struct Reply {
  Op op = Op::kStat;
  ReplyStatus status = ReplyStatus::kOk;
  uint64_t request_id = 0;
  std::string error;  // non-OK only

  ArchiveInfo info;                // open/stat/append
  std::vector<FrameEntry> index;   // index
  uint32_t num_snapshots = 0;      // extract
  uint32_t num_particles = 0;      // extract
  std::vector<double> data;        // extract
  uint64_t audit_frames = 0;       // audit
  uint64_t audit_bytes = 0;        // audit
};

std::vector<uint8_t> EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeReply(const Reply& reply);
Result<Reply> DecodeReply(std::span<const uint8_t> payload);

// Framed socket I/O (blocking, EINTR-safe, SIGPIPE suppressed). ReadFrame
// returns OutOfRange("connection closed") on clean EOF at a frame boundary,
// Corruption on a truncated or oversized frame, Internal on socket errors.
Status WriteFrame(int fd, std::span<const uint8_t> payload);
Result<std::vector<uint8_t>> ReadFrame(int fd,
                                       size_t max_bytes = kMaxFrameBytes);

}  // namespace mdz::serve

#endif  // MDZ_SERVE_PROTOCOL_H_
