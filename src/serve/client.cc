#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace mdz::serve {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                const Options& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a valid IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("cannot connect to " + host + ":" +
                            std::to_string(port) + ": " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto client = std::unique_ptr<Client>(new Client());
  client->fd_ = fd;
  client->options_ = options;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Reply> Client::Call(Request request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (request.request_id == 0) request.request_id = next_request_id_++;
  if (request.tenant.empty()) request.tenant = options_.tenant;
  if (request.deadline_ms == 0) request.deadline_ms = options_.deadline_ms;
  const uint64_t id = request.request_id;
  MDZ_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request)));
  MDZ_ASSIGN_OR_RETURN(auto frame, ReadFrame(fd_));
  MDZ_ASSIGN_OR_RETURN(Reply reply, DecodeReply(frame));
  if (reply.request_id != id) {
    return Status::Internal("reply id " + std::to_string(reply.request_id) +
                            " does not match request " + std::to_string(id));
  }
  last_status_ = reply.status;
  return reply;
}

Result<Reply> Client::CallChecked(Request request) {
  MDZ_ASSIGN_OR_RETURN(Reply reply, Call(std::move(request)));
  switch (reply.status) {
    case ReplyStatus::kOk:
      return reply;
    case ReplyStatus::kBusy:
    case ReplyStatus::kShuttingDown:
      return Status::FailedPrecondition("server busy: " + reply.error);
    case ReplyStatus::kNotFound:
    case ReplyStatus::kInvalid:
      return Status::InvalidArgument(reply.error);
    case ReplyStatus::kCorrupt:
      return Status::Corruption(reply.error);
    case ReplyStatus::kDeadline:
      return Status::FailedPrecondition("deadline expired: " + reply.error);
    default:
      return Status::Internal(reply.error);
  }
}

Result<ArchiveInfo> Client::Open(const std::string& archive) {
  Request request;
  request.op = Op::kOpen;
  request.archive = archive;
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  return reply.info;
}

Result<ArchiveInfo> Client::Stat(const std::string& archive) {
  Request request;
  request.op = Op::kStat;
  request.archive = archive;
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  return reply.info;
}

Result<std::vector<FrameEntry>> Client::Index(const std::string& archive) {
  Request request;
  request.op = Op::kIndex;
  request.archive = archive;
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  return std::move(reply.index);
}

Result<std::vector<core::Snapshot>> Client::Extract(const std::string& archive,
                                                    uint64_t first,
                                                    uint64_t count,
                                                    uint64_t first_particle,
                                                    uint64_t particle_count) {
  Request request;
  request.op = Op::kExtract;
  request.archive = archive;
  request.first = first;
  request.count = count;
  request.first_particle = first_particle;
  request.particle_count = particle_count;
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  if (reply.data.size() != static_cast<size_t>(reply.num_snapshots) * 3 *
                               reply.num_particles) {
    return Status::Corruption("extract reply data size mismatch");
  }
  std::vector<core::Snapshot> snapshots(reply.num_snapshots);
  const double* src = reply.data.data();
  for (core::Snapshot& s : snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      s.axes[axis].assign(src, src + reply.num_particles);
      src += reply.num_particles;
    }
  }
  return snapshots;
}

Result<ArchiveInfo> Client::Append(const std::string& archive,
                                   const std::vector<core::Snapshot>& snapshots) {
  if (snapshots.empty()) {
    return Status::InvalidArgument("append needs at least one snapshot");
  }
  const size_t particles = snapshots.front().num_particles();
  Request request;
  request.op = Op::kAppend;
  request.archive = archive;
  request.append_snapshots = static_cast<uint32_t>(snapshots.size());
  request.append_particles = static_cast<uint32_t>(particles);
  request.append_data.reserve(snapshots.size() * 3 * particles);
  for (const core::Snapshot& s : snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      if (s.axes[axis].size() != particles) {
        return Status::InvalidArgument(
            "append snapshots have inconsistent particle counts");
      }
      request.append_data.insert(request.append_data.end(),
                                 s.axes[axis].begin(), s.axes[axis].end());
    }
  }
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  return reply.info;
}

Result<Client::AuditResult> Client::Audit(const std::string& archive) {
  Request request;
  request.op = Op::kAudit;
  request.archive = archive;
  MDZ_ASSIGN_OR_RETURN(Reply reply, CallChecked(std::move(request)));
  AuditResult result;
  result.frames = reply.audit_frames;
  result.payload_bytes = reply.audit_bytes;
  return result;
}

}  // namespace mdz::serve
