#ifndef MDZ_SERVE_CLIENT_H_
#define MDZ_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace mdz::serve {

// Blocking single-connection client for the mdz archive service: one
// request in flight at a time (Call writes a frame and reads the matching
// reply). Not thread-safe — concurrent callers each open their own Client.
// Used by `mdz query`, bench/serve and the serve tests.
class Client {
 public:
  struct Options {
    std::string tenant = "cli";
    uint32_t deadline_ms = 0;  // 0 = server default
  };

  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 const Options& options);
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port) {
    return Connect(host, port, Options());
  }
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Sends `request` (request_id assigned if 0) and returns the reply.
  // Transport errors surface as Status; protocol-level failures (BUSY,
  // NOT_FOUND, ...) come back as a Reply with non-OK status.
  Result<Reply> Call(Request request);

  // Convenience wrappers; non-OK reply statuses map onto Status codes
  // (BUSY/SHUTTING_DOWN -> FailedPrecondition "server busy...", NOT_FOUND ->
  // InvalidArgument, CORRUPT -> Corruption, ...).
  Result<ArchiveInfo> Open(const std::string& archive);
  Result<ArchiveInfo> Stat(const std::string& archive);
  Result<std::vector<FrameEntry>> Index(const std::string& archive);
  // particle_count 0 = whole snapshots.
  Result<std::vector<core::Snapshot>> Extract(const std::string& archive,
                                              uint64_t first, uint64_t count,
                                              uint64_t first_particle = 0,
                                              uint64_t particle_count = 0);
  Result<ArchiveInfo> Append(const std::string& archive,
                             const std::vector<core::Snapshot>& snapshots);
  struct AuditResult {
    uint64_t frames = 0;
    uint64_t payload_bytes = 0;
  };
  Result<AuditResult> Audit(const std::string& archive);

  // Last reply's wire status (for callers that want BUSY vs error detail
  // after a convenience wrapper failed).
  ReplyStatus last_status() const { return last_status_; }

 private:
  Client() = default;
  Result<Reply> CallChecked(Request request);

  int fd_ = -1;
  Options options_;
  uint64_t next_request_id_ = 1;
  ReplyStatus last_status_ = ReplyStatus::kOk;
};

}  // namespace mdz::serve

#endif  // MDZ_SERVE_CLIENT_H_
