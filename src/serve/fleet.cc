#include "serve/fleet.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "archive/writer.h"
#include "core/mdz.h"

namespace mdz::serve {

ArchiveFleet::ArchiveFleet(const Options& options)
    : root_(options.root),
      cache_(options.cache),
      pool_(options.pool),
      max_open_(std::max<size_t>(options.max_open, 1)) {}

bool ArchiveFleet::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 512) return false;
  if (name.front() == '/' || name.back() == '/') return false;
  size_t segment_start = 0;
  for (size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '/') {
      const std::string_view segment(name.data() + segment_start,
                                     i - segment_start);
      if (segment.empty() || segment == "." || segment == "..") return false;
      segment_start = i + 1;
      continue;
    }
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string ArchiveFleet::PathFor(const std::string& name) const {
  return root_ + "/" + name;
}

Result<std::shared_ptr<const OpenArchive>> ArchiveFleet::OpenLocked(
    const std::string& name) {
  const std::string path = PathFor(name);
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::FailedPrecondition("no such archive: " + name);
  }
  archive::ReaderOptions reader_options;
  reader_options.cache = cache_;
  reader_options.generation = cache_->RegisterGeneration();
  MDZ_ASSIGN_OR_RETURN(auto reader,
                       archive::ArchiveReader::Open(path, reader_options));
  auto open = std::make_shared<OpenArchive>();
  open->name = name;
  open->generation = reader_options.generation;
  open->reader = std::move(reader);
  return std::shared_ptr<const OpenArchive>(std::move(open));
}

std::vector<uint64_t> ArchiveFleet::EnforceBoundLocked() {
  std::vector<uint64_t> dropped;
  while (true) {
    size_t open_count = 0;
    std::map<std::string, Entry>::iterator oldest = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.open == nullptr) continue;
      ++open_count;
      if (oldest == entries_.end() ||
          it->second.lru_seq < oldest->second.lru_seq) {
        oldest = it;
      }
    }
    if (open_count <= max_open_ || oldest == entries_.end()) break;
    // Requests already holding the shared_ptr keep reading; the cache just
    // stops retaining this incarnation's frames.
    dropped.push_back(oldest->second.open->generation);
    oldest->second.open = nullptr;
  }
  return dropped;
}

Result<std::shared_ptr<const OpenArchive>> ArchiveFleet::Acquire(
    const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid archive name: " + name);
  }
  std::shared_ptr<std::mutex> append_mu;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[name];
    if (entry.open != nullptr) {
      entry.lru_seq = ++next_lru_seq_;
      return entry.open;
    }
    append_mu = entry.append_mu;
  }
  // Handle miss (LRU-recycled or Reload-dropped): opening from disk must
  // serialize against appends — a reseal rewrites the footer region, and an
  // Open that reads the file mid-reseal sees a damaged trailer. Lock order
  // matches Append: append_mu first, mu_ inside.
  std::lock_guard<std::mutex> append_lock(*append_mu);
  std::shared_ptr<const OpenArchive> open;
  std::vector<uint64_t> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[name];
    if (entry.open == nullptr) {
      auto result = OpenLocked(name);
      if (!result.ok()) {
        if (entry.lru_seq == 0) entries_.erase(name);  // never opened
        return result.status();
      }
      entry.open = std::move(result).value();
      dropped = EnforceBoundLocked();
    }
    entry.lru_seq = ++next_lru_seq_;
    open = entry.open;
  }
  for (const uint64_t generation : dropped) {
    cache_->InvalidateGeneration(generation);
  }
  return open;
}

Result<ArchiveFleet::AppendResult> ArchiveFleet::Append(
    const std::string& name, const std::vector<core::Snapshot>& snapshots) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid archive name: " + name);
  }
  if (snapshots.empty()) {
    return Status::InvalidArgument("append needs at least one snapshot");
  }
  const size_t particles = snapshots.front().num_particles();
  for (const core::Snapshot& s : snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      if (s.axes[axis].size() != particles) {
        return Status::InvalidArgument(
            "append snapshots have inconsistent particle counts");
      }
      // A remote client's NaN/Inf would otherwise be quantized into the
      // archive (the error bound is meaningless for non-finite values) and
      // poison every later prediction that references the snapshot.
      for (const double v : s.axes[axis]) {
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(
              "append snapshots contain non-finite coordinates");
        }
      }
    }
  }
  std::shared_ptr<std::mutex> append_mu;
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_mu = entries_[name].append_mu;
  }
  // Serialize appends per archive. Readers keep serving the old incarnation
  // throughout: a reseal only rewrites bytes at and past the old footer
  // offset, beyond every frame the old generation can read.
  std::lock_guard<std::mutex> append_lock(*append_mu);
  const std::string path = PathFor(name);
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::FailedPrecondition("no such archive: " + name);
  }
  // Codec parameters recorded in the file (buffer size, bound, scale) are
  // recovered by Reopen; defaults cover method/adaptation for archives
  // written with default settings (docs/SERVICE.md documents the limit).
  core::Options options;
  auto writer = archive::ArchiveWriter::Reopen(path, options, pool_);
  if (!writer.ok()) return writer.status();
  if ((*writer)->num_particles() != particles) {
    return Status::InvalidArgument(
        "particle count mismatch: archive has " +
        std::to_string((*writer)->num_particles()) + ", append has " +
        std::to_string(particles));
  }
  Status append_status = Status::OK();
  for (const core::Snapshot& s : snapshots) {
    append_status = (*writer)->Append(s);
    if (!append_status.ok()) break;
  }
  if (append_status.ok()) append_status = (*writer)->Finish();
  // Success or failure, the on-disk incarnation changed (or may be damaged):
  // drop the old handle and invalidate its generation so nothing stale — or
  // newly wrong — is served from memory.
  std::shared_ptr<const OpenArchive> old;
  Result<std::shared_ptr<const OpenArchive>> reopened =
      append_status.ok() ? [&] {
        std::lock_guard<std::mutex> lock(mu_);
        return OpenLocked(name);
      }()
                         : Result<std::shared_ptr<const OpenArchive>>(
                               append_status);
  std::vector<uint64_t> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[name];
    old = std::move(entry.open);
    entry.open = reopened.ok() ? reopened.value() : nullptr;
    entry.lru_seq = ++next_lru_seq_;
    if (entry.open != nullptr) dropped = EnforceBoundLocked();
  }
  if (old != nullptr) cache_->InvalidateGeneration(old->generation);
  for (const uint64_t generation : dropped) {
    cache_->InvalidateGeneration(generation);
  }
  if (!append_status.ok()) return append_status;
  if (!reopened.ok()) return reopened.status();
  AppendResult result;
  result.total_snapshots = (*reopened)->reader->num_snapshots();
  result.generation = (*reopened)->generation;
  return result;
}

void ArchiveFleet::Reload() {
  std::vector<uint64_t> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, entry] : entries_) {
      if (entry.open != nullptr) {
        dropped.push_back(entry.open->generation);
        entry.open = nullptr;
      }
    }
  }
  for (const uint64_t generation : dropped) {
    cache_->InvalidateGeneration(generation);
  }
}

size_t ArchiveFleet::open_handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.open != nullptr) ++count;
  }
  return count;
}

void ArchiveFleet::set_max_open(size_t max_open) {
  std::vector<uint64_t> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_open_ = std::max<size_t>(max_open, 1);
    dropped = EnforceBoundLocked();
  }
  for (const uint64_t generation : dropped) {
    cache_->InvalidateGeneration(generation);
  }
}

}  // namespace mdz::serve
