#ifndef MDZ_SERVE_SCHEDULER_H_
#define MDZ_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

namespace mdz::core {
class ThreadPool;
}
namespace mdz::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace mdz::obs

namespace mdz::serve {

// Two service lanes. Interactive requests (extract/stat/index/open) are
// latency-sensitive and get most of the concurrency; background work
// (append/audit/repack) is throughput work that must not starve them.
enum class Lane : uint8_t { kInteractive = 0, kBackground = 1 };
inline constexpr size_t kNumLanes = 2;

// Per-tenant admission limits, applied to queued + executing requests.
struct TenantQuota {
  uint32_t max_inflight = 16;
  uint64_t max_bytes = 256ull << 20;  // sum of declared request costs
};

enum class RejectReason : uint8_t {
  kNone = 0,
  kQueueFull,       // lane queue at capacity (backpressure)
  kTenantInflight,  // tenant at max_inflight
  kTenantBytes,     // tenant at max_bytes
  kShuttingDown,    // Drain() started
};

// RequestScheduler admits, orders, and dispatches request handlers onto a
// ThreadPool. Admission is all-or-nothing at Submit: a request that would
// overflow the lane queue or the tenant's quota is rejected immediately
// (the caller answers BUSY — bounded memory, no silent queueing). Admitted
// requests wait in their lane's queue ordered by absolute deadline
// (earliest first, FIFO among equals) and run when the lane has a free
// concurrency slot, interactive lane first. A request whose deadline passes
// before dispatch is still delivered to its handler, with `expired` set, so
// the client gets a DEADLINE reply instead of silence.
//
// Thread-safe. Handlers run on pool threads (inline on a serial pool) and
// must not block on the scheduler other than via nested Submit (which never
// blocks).
class RequestScheduler {
 public:
  struct Options {
    core::ThreadPool* pool = nullptr;  // required; may be serial
    size_t interactive_slots = 4;
    size_t background_slots = 1;
    size_t max_queue = 256;  // per lane
    uint64_t default_deadline_ms = 30000;
    TenantQuota default_quota;
    std::map<std::string, TenantQuota> tenant_quotas;
    obs::MetricsRegistry* registry = nullptr;  // default: process-global
  };

  explicit RequestScheduler(const Options& options);
  ~RequestScheduler();  // implies Drain()

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // Queues `work` for execution. `deadline_ms` is relative to now (0 uses
  // the default). `cost_bytes` is the declared size of the request (response
  // estimate for extracts, payload size for appends) charged against the
  // tenant's byte quota while in flight. Returns false with *reason set when
  // rejected; `work` is then never called.
  bool Submit(Lane lane, const std::string& tenant, uint64_t deadline_ms,
              uint64_t cost_bytes, std::function<void(bool expired)> work,
              RejectReason* reason = nullptr);

  // Replaces quota/slot limits (SIGHUP reload). In-flight accounting
  // carries over; new limits apply to subsequent Submits.
  void UpdateLimits(size_t interactive_slots, size_t background_slots,
                    size_t max_queue, const TenantQuota& default_quota,
                    const std::map<std::string, TenantQuota>& tenant_quotas);

  // Stops accepting (Submit returns kShuttingDown) and blocks until every
  // queued and executing request has completed. Idempotent.
  void Drain();

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t busy_rejects = 0;      // queue-full backpressure
    uint64_t quota_rejects = 0;     // tenant quota
    uint64_t deadline_expired = 0;  // dispatched past their deadline
    size_t queued = 0;
    size_t running = 0;
  };
  Stats stats() const;

 private:
  struct Item {
    uint64_t deadline_ns = 0;  // absolute, steady clock
    uint64_t seq = 0;          // FIFO tiebreak
    std::string tenant;
    uint64_t cost_bytes = 0;
    std::function<void(bool)> work;
  };
  struct ItemOrder {
    // priority_queue keeps the largest on top; invert for earliest-deadline.
    bool operator()(const Item& a, const Item& b) const {
      if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
      return a.seq > b.seq;
    }
  };
  struct LaneState {
    std::priority_queue<Item, std::vector<Item>, ItemOrder> queue;
    size_t running = 0;
  };
  struct TenantState {
    uint32_t inflight = 0;
    uint64_t bytes = 0;
  };

  const TenantQuota& QuotaForLocked(const std::string& tenant) const;
  // Pops every dispatchable item under the lock, then posts them to the
  // pool outside it (a serial pool runs tasks inline in Post, which would
  // deadlock on mu_ otherwise).
  void DispatchReady();
  void Execute(Lane lane, Item item);

  core::ThreadPool* const pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  size_t slots_[kNumLanes];
  size_t max_queue_;
  uint64_t default_deadline_ms_;
  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> tenant_quotas_;
  LaneState lanes_[kNumLanes];
  std::map<std::string, TenantState> tenants_;
  // Execute bodies past their completion accounting but still inside member
  // calls (DispatchReady, the idle notify). Drain waits for zero: the owner
  // may destroy the scheduler the moment Drain returns.
  size_t tails_inflight_ = 0;
  bool draining_ = false;
  uint64_t next_seq_ = 0;
  Stats stats_;

  obs::Counter* submitted_counter_;
  obs::Counter* completed_counter_;
  obs::Counter* busy_counter_;
  obs::Counter* quota_counter_;
  obs::Counter* deadline_counter_;
  obs::Gauge* queued_gauge_;
  obs::Gauge* running_gauge_;
  obs::Histogram* lane_seconds_[kNumLanes];
};

}  // namespace mdz::serve

#endif  // MDZ_SERVE_SCHEDULER_H_
