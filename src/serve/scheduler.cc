#include "serve/scheduler.h"

#include <chrono>

#include "core/thread_pool.h"
#include "obs/metrics.h"

namespace mdz::serve {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RequestScheduler::RequestScheduler(const Options& options)
    : pool_(options.pool),
      max_queue_(options.max_queue),
      default_deadline_ms_(options.default_deadline_ms),
      default_quota_(options.default_quota),
      tenant_quotas_(options.tenant_quotas) {
  slots_[static_cast<size_t>(Lane::kInteractive)] =
      options.interactive_slots == 0 ? 1 : options.interactive_slots;
  slots_[static_cast<size_t>(Lane::kBackground)] =
      options.background_slots == 0 ? 1 : options.background_slots;
  obs::MetricsRegistry& registry = options.registry != nullptr
                                       ? *options.registry
                                       : obs::MetricsRegistry::Global();
  submitted_counter_ = registry.GetCounter("serve/requests");
  completed_counter_ = registry.GetCounter("serve/completed");
  busy_counter_ = registry.GetCounter("serve/busy_rejects");
  quota_counter_ = registry.GetCounter("serve/quota_rejects");
  deadline_counter_ = registry.GetCounter("serve/deadline_expired");
  queued_gauge_ = registry.GetGauge("serve/queue_depth");
  running_gauge_ = registry.GetGauge("serve/inflight");
  lane_seconds_[static_cast<size_t>(Lane::kInteractive)] =
      registry.GetHistogram("serve/interactive_seconds",
                            obs::DurationBuckets());
  lane_seconds_[static_cast<size_t>(Lane::kBackground)] =
      registry.GetHistogram("serve/background_seconds",
                            obs::DurationBuckets());
}

RequestScheduler::~RequestScheduler() { Drain(); }

const TenantQuota& RequestScheduler::QuotaForLocked(
    const std::string& tenant) const {
  auto it = tenant_quotas_.find(tenant);
  return it != tenant_quotas_.end() ? it->second : default_quota_;
}

bool RequestScheduler::Submit(Lane lane, const std::string& tenant,
                              uint64_t deadline_ms, uint64_t cost_bytes,
                              std::function<void(bool expired)> work,
                              RejectReason* reason) {
  RejectReason local = RejectReason::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneState& state = lanes_[static_cast<size_t>(lane)];
    const TenantQuota& quota = QuotaForLocked(tenant);
    TenantState& ts = tenants_[tenant];
    if (draining_) {
      local = RejectReason::kShuttingDown;
    } else if (state.queue.size() >= max_queue_) {
      local = RejectReason::kQueueFull;
      ++stats_.busy_rejects;
      busy_counter_->Increment();
    } else if (ts.inflight + 1 > quota.max_inflight) {
      local = RejectReason::kTenantInflight;
      ++stats_.quota_rejects;
      quota_counter_->Increment();
    } else if (ts.bytes + cost_bytes > quota.max_bytes) {
      local = RejectReason::kTenantBytes;
      ++stats_.quota_rejects;
      quota_counter_->Increment();
    }
    if (local != RejectReason::kNone) {
      if (reason != nullptr) *reason = local;
      return false;
    }
    ts.inflight += 1;
    ts.bytes += cost_bytes;
    Item item;
    const uint64_t relative_ms =
        deadline_ms == 0 ? default_deadline_ms_ : deadline_ms;
    item.deadline_ns = NowNs() + relative_ms * 1000000ull;
    item.seq = next_seq_++;
    item.tenant = tenant;
    item.cost_bytes = cost_bytes;
    item.work = std::move(work);
    state.queue.push(std::move(item));
    ++stats_.submitted;
    submitted_counter_->Increment();
    queued_gauge_->Add(1);
  }
  if (reason != nullptr) *reason = RejectReason::kNone;
  DispatchReady();
  return true;
}

void RequestScheduler::DispatchReady() {
  // Claim (lane, item) pairs under the lock, run Post outside it: a serial
  // pool executes the task inline inside Post, and Execute re-locks mu_.
  std::vector<std::pair<Lane, Item>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t l = 0; l < kNumLanes; ++l) {  // interactive lane first
      LaneState& state = lanes_[l];
      while (state.running < slots_[l] && !state.queue.empty()) {
        // priority_queue::top is const; the copy is small (handlers capture
        // their payloads by shared_ptr).
        Item item = state.queue.top();
        state.queue.pop();
        ++state.running;
        queued_gauge_->Add(-1);
        running_gauge_->Add(1);
        ready.emplace_back(static_cast<Lane>(l), std::move(item));
      }
    }
  }
  for (auto& [lane, item] : ready) {
    pool_->Post([this, lane, item = std::move(item)]() mutable {
      Execute(lane, std::move(item));
    });
  }
}

void RequestScheduler::Execute(Lane lane, Item item) {
  const uint64_t start = NowNs();
  const bool expired = start > item.deadline_ns;
  item.work(expired);
  const double seconds = static_cast<double>(NowNs() - start) * 1e-9;
  lane_seconds_[static_cast<size_t>(lane)]->Observe(seconds);
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneState& state = lanes_[static_cast<size_t>(lane)];
    --state.running;
    running_gauge_->Add(-1);
    auto it = tenants_.find(item.tenant);
    if (it != tenants_.end()) {
      it->second.inflight -= 1;
      it->second.bytes -= item.cost_bytes;
      if (it->second.inflight == 0 && it->second.bytes == 0) {
        tenants_.erase(it);  // keep the map bounded by active tenants
      }
    }
    ++stats_.completed;
    completed_counter_->Increment();
    if (expired) {
      ++stats_.deadline_expired;
      deadline_counter_->Increment();
    }
    // Keeps Drain blocked through the DispatchReady below: without it, a
    // completion that empties the lanes lets Drain return — and the owner
    // destroy *this — while this thread still has member calls ahead.
    ++tails_inflight_;
  }
  DispatchReady();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --tails_inflight_;
    idle = tails_inflight_ == 0;
    for (size_t l = 0; l < kNumLanes; ++l) {
      if (lanes_[l].running != 0 || !lanes_[l].queue.empty()) idle = false;
    }
    // Notify under the lock, as the last member access: the moment Drain's
    // waiter observes idle it may return and the scheduler be destroyed, so
    // nothing — not even an unlocked notify — may touch *this afterwards.
    if (idle) idle_cv_.notify_all();
  }
}

void RequestScheduler::UpdateLimits(
    size_t interactive_slots, size_t background_slots, size_t max_queue,
    const TenantQuota& default_quota,
    const std::map<std::string, TenantQuota>& tenant_quotas) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[static_cast<size_t>(Lane::kInteractive)] =
        interactive_slots == 0 ? 1 : interactive_slots;
    slots_[static_cast<size_t>(Lane::kBackground)] =
        background_slots == 0 ? 1 : background_slots;
    max_queue_ = max_queue;
    default_quota_ = default_quota;
    tenant_quotas_ = tenant_quotas;
  }
  DispatchReady();  // wider slots may unblock queued work immediately
}

void RequestScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_cv_.wait(lock, [this] {
    if (tails_inflight_ != 0) return false;  // Execute epilogues still live
    for (size_t l = 0; l < kNumLanes; ++l) {
      if (lanes_[l].running != 0 || !lanes_[l].queue.empty()) return false;
    }
    return true;
  });
}

RequestScheduler::Stats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  for (size_t l = 0; l < kNumLanes; ++l) {
    s.queued += lanes_[l].queue.size();
    s.running += lanes_[l].running;
  }
  return s;
}

}  // namespace mdz::serve
