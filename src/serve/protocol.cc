#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/byte_buffer.h"
#include "util/unaligned.h"

namespace mdz::serve {

namespace {

// Strings on the wire are u16-length-prefixed (tenant/archive/error names
// are short by construction).
void PutString(ByteWriter* w, const std::string& s) {
  w->Put<uint16_t>(static_cast<uint16_t>(s.size()));
  w->PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Status GetString(ByteReader* r, std::string* out) {
  uint16_t len = 0;
  MDZ_RETURN_IF_ERROR(r->Get(&len));
  out->resize(len);
  return r->GetBytes(out->data(), len);
}

void PutDoubles(ByteWriter* w, const std::vector<double>& values) {
  w->PutBytes(reinterpret_cast<const uint8_t*>(values.data()),
              values.size() * sizeof(double));
}

Status GetDoubles(ByteReader* r, size_t count, std::vector<double>* out) {
  if (count > kMaxFrameBytes / sizeof(double)) {
    return Status::Corruption("double array length implausible");
  }
  out->resize(count);
  return r->GetBytes(out->data(), count * sizeof(double));
}

}  // namespace

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kStat: return "stat";
    case Op::kIndex: return "index";
    case Op::kExtract: return "extract";
    case Op::kAppend: return "append";
    case Op::kAudit: return "audit";
  }
  return "unknown";
}

std::string_view ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "OK";
    case ReplyStatus::kBusy: return "BUSY";
    case ReplyStatus::kNotFound: return "NOT_FOUND";
    case ReplyStatus::kInvalid: return "INVALID";
    case ReplyStatus::kCorrupt: return "CORRUPT";
    case ReplyStatus::kDeadline: return "DEADLINE";
    case ReplyStatus::kShuttingDown: return "SHUTTING_DOWN";
    case ReplyStatus::kError: return "ERROR";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  ByteWriter w;
  w.Put<uint8_t>(static_cast<uint8_t>(request.op));
  w.Put<uint64_t>(request.request_id);
  w.Put<uint32_t>(request.deadline_ms);
  PutString(&w, request.tenant);
  PutString(&w, request.archive);
  switch (request.op) {
    case Op::kExtract:
      w.Put<uint64_t>(request.first);
      w.Put<uint64_t>(request.count);
      w.Put<uint64_t>(request.first_particle);
      w.Put<uint64_t>(request.particle_count);
      break;
    case Op::kAppend:
      w.Put<uint32_t>(request.append_snapshots);
      w.Put<uint32_t>(request.append_particles);
      PutDoubles(&w, request.append_data);
      break;
    default:
      break;
  }
  return w.TakeBytes();
}

Result<Request> DecodeRequest(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Request request;
  uint8_t op = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&op));
  if (op < static_cast<uint8_t>(Op::kOpen) ||
      op > static_cast<uint8_t>(Op::kAudit)) {
    return Status::Corruption("unknown request op " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  MDZ_RETURN_IF_ERROR(r.Get(&request.request_id));
  MDZ_RETURN_IF_ERROR(r.Get(&request.deadline_ms));
  MDZ_RETURN_IF_ERROR(GetString(&r, &request.tenant));
  MDZ_RETURN_IF_ERROR(GetString(&r, &request.archive));
  switch (request.op) {
    case Op::kExtract:
      MDZ_RETURN_IF_ERROR(r.Get(&request.first));
      MDZ_RETURN_IF_ERROR(r.Get(&request.count));
      MDZ_RETURN_IF_ERROR(r.Get(&request.first_particle));
      MDZ_RETURN_IF_ERROR(r.Get(&request.particle_count));
      break;
    case Op::kAppend: {
      MDZ_RETURN_IF_ERROR(r.Get(&request.append_snapshots));
      MDZ_RETURN_IF_ERROR(r.Get(&request.append_particles));
      const size_t values = static_cast<size_t>(request.append_snapshots) * 3 *
                            request.append_particles;
      MDZ_RETURN_IF_ERROR(GetDoubles(&r, values, &request.append_data));
      break;
    }
    default:
      break;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after request body");
  }
  return request;
}

std::vector<uint8_t> EncodeReply(const Reply& reply) {
  ByteWriter w;
  w.Put<uint8_t>(static_cast<uint8_t>(reply.op));
  w.Put<uint8_t>(static_cast<uint8_t>(reply.status));
  w.Put<uint64_t>(reply.request_id);
  if (reply.status != ReplyStatus::kOk) {
    PutString(&w, reply.error);
    return w.TakeBytes();
  }
  switch (reply.op) {
    case Op::kExtract:
      w.Put<uint32_t>(reply.num_snapshots);
      w.Put<uint32_t>(reply.num_particles);
      PutDoubles(&w, reply.data);
      break;
    case Op::kOpen:
    case Op::kStat:
    case Op::kAppend:
      w.Put<uint64_t>(reply.info.num_snapshots);
      w.Put<uint64_t>(reply.info.num_particles);
      w.Put<uint64_t>(reply.info.num_frames);
      w.Put<uint64_t>(reply.info.generation);
      for (double b : reply.info.box) w.Put<double>(b);
      PutString(&w, reply.info.name);
      break;
    case Op::kIndex:
      w.Put<uint32_t>(static_cast<uint32_t>(reply.index.size()));
      for (const FrameEntry& f : reply.index) {
        w.Put<uint8_t>(f.axis);
        w.Put<uint8_t>(f.method);
        w.Put<uint64_t>(f.first_snapshot);
        w.Put<uint64_t>(f.s_count);
        w.Put<uint64_t>(f.frame_size);
      }
      break;
    case Op::kAudit:
      w.Put<uint64_t>(reply.audit_frames);
      w.Put<uint64_t>(reply.audit_bytes);
      break;
  }
  return w.TakeBytes();
}

Result<Reply> DecodeReply(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Reply reply;
  uint8_t op = 0;
  uint8_t status = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&op));
  MDZ_RETURN_IF_ERROR(r.Get(&status));
  if (op < static_cast<uint8_t>(Op::kOpen) ||
      op > static_cast<uint8_t>(Op::kAudit)) {
    return Status::Corruption("unknown reply op " + std::to_string(op));
  }
  if (status > static_cast<uint8_t>(ReplyStatus::kError)) {
    return Status::Corruption("unknown reply status " + std::to_string(status));
  }
  reply.op = static_cast<Op>(op);
  reply.status = static_cast<ReplyStatus>(status);
  MDZ_RETURN_IF_ERROR(r.Get(&reply.request_id));
  if (reply.status != ReplyStatus::kOk) {
    MDZ_RETURN_IF_ERROR(GetString(&r, &reply.error));
    return reply;
  }
  switch (reply.op) {
    case Op::kExtract: {
      MDZ_RETURN_IF_ERROR(r.Get(&reply.num_snapshots));
      MDZ_RETURN_IF_ERROR(r.Get(&reply.num_particles));
      const size_t values = static_cast<size_t>(reply.num_snapshots) * 3 *
                            reply.num_particles;
      MDZ_RETURN_IF_ERROR(GetDoubles(&r, values, &reply.data));
      break;
    }
    case Op::kOpen:
    case Op::kStat:
    case Op::kAppend:
      MDZ_RETURN_IF_ERROR(r.Get(&reply.info.num_snapshots));
      MDZ_RETURN_IF_ERROR(r.Get(&reply.info.num_particles));
      MDZ_RETURN_IF_ERROR(r.Get(&reply.info.num_frames));
      MDZ_RETURN_IF_ERROR(r.Get(&reply.info.generation));
      for (double& b : reply.info.box) MDZ_RETURN_IF_ERROR(r.Get(&b));
      MDZ_RETURN_IF_ERROR(GetString(&r, &reply.info.name));
      break;
    case Op::kIndex: {
      uint32_t n = 0;
      MDZ_RETURN_IF_ERROR(r.Get(&n));
      if (n > kMaxFrameBytes / 26) {
        return Status::Corruption("frame table length implausible");
      }
      reply.index.resize(n);
      for (FrameEntry& f : reply.index) {
        MDZ_RETURN_IF_ERROR(r.Get(&f.axis));
        MDZ_RETURN_IF_ERROR(r.Get(&f.method));
        MDZ_RETURN_IF_ERROR(r.Get(&f.first_snapshot));
        MDZ_RETURN_IF_ERROR(r.Get(&f.s_count));
        MDZ_RETURN_IF_ERROR(r.Get(&f.frame_size));
      }
      break;
    }
    case Op::kAudit:
      MDZ_RETURN_IF_ERROR(r.Get(&reply.audit_frames));
      MDZ_RETURN_IF_ERROR(r.Get(&reply.audit_bytes));
      break;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after reply body");
  }
  return reply;
}

Status WriteFrame(int fd, std::span<const uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds protocol maximum");
  }
  uint8_t prefix[4];
  StoreU(prefix, static_cast<uint32_t>(payload.size()));
  // Two sends instead of one copy: the prefix is tiny and the payload may be
  // large (extract data). MSG_NOSIGNAL turns a dead peer into EPIPE.
  const auto send_all = [fd](const uint8_t* data, size_t n) -> Status {
    size_t done = 0;
    while (done < n) {
      const ssize_t sent =
          ::send(fd, data + done, n - done, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("send failed: ") +
                                std::strerror(errno));
      }
      done += static_cast<size_t>(sent);
    }
    return Status::OK();
  };
  MDZ_RETURN_IF_ERROR(send_all(prefix, sizeof(prefix)));
  return send_all(payload.data(), payload.size());
}

Result<std::vector<uint8_t>> ReadFrame(int fd, size_t max_bytes) {
  const auto recv_all = [fd](uint8_t* data, size_t n,
                             bool* clean_eof) -> Status {
    size_t done = 0;
    while (done < n) {
      const ssize_t got = ::recv(fd, data + done, n - done, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("recv failed: ") +
                                std::strerror(errno));
      }
      if (got == 0) {
        if (clean_eof != nullptr && done == 0) {
          *clean_eof = true;
          return Status::OK();
        }
        return Status::Corruption("connection closed mid-frame");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  };
  uint8_t prefix[4];
  bool clean_eof = false;
  MDZ_RETURN_IF_ERROR(recv_all(prefix, sizeof(prefix), &clean_eof));
  if (clean_eof) return Status::OutOfRange("connection closed");
  const uint32_t length = LoadU<uint32_t>(prefix);
  if (length > max_bytes) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit");
  }
  std::vector<uint8_t> payload(length);
  MDZ_RETURN_IF_ERROR(recv_all(payload.data(), payload.size(), nullptr));
  return payload;
}

}  // namespace mdz::serve
