#include "analysis/characterize.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mdz::analysis {

Histogram ComputeHistogram(std::span<const double> values, int bins) {
  Histogram h;
  h.counts.assign(std::max(bins, 1), 0);
  if (values.empty()) return h;
  auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  h.lo = *lo_it;
  h.hi = *hi_it;
  if (h.hi <= h.lo) {
    h.counts[0] = values.size();
    return h;
  }
  const double inv_width =
      static_cast<double>(h.counts.size()) / (h.hi - h.lo);
  for (double v : values) {
    size_t bin = static_cast<size_t>((v - h.lo) * inv_width);
    if (bin >= h.counts.size()) bin = h.counts.size() - 1;
    ++h.counts[bin];
  }
  return h;
}

int CountHistogramPeaks(const Histogram& histogram, double min_peak_fraction) {
  const auto& c = histogram.counts;
  if (c.size() < 3) return c.empty() ? 0 : 1;
  const size_t tallest = *std::max_element(c.begin(), c.end());
  if (tallest == 0) return 0;
  const double threshold =
      min_peak_fraction * static_cast<double>(tallest);
  int peaks = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    const double v = static_cast<double>(c[i]);
    if (v < threshold) continue;
    const double left = (i > 0) ? static_cast<double>(c[i - 1]) : -1.0;
    const double right =
        (i + 1 < c.size()) ? static_cast<double>(c[i + 1]) : -1.0;
    if (v >= left && v > right) ++peaks;
  }
  return peaks;
}

double SpatialRoughness(std::span<const double> snapshot) {
  if (snapshot.size() < 2) return 0.0;
  auto [lo_it, hi_it] =
      std::minmax_element(snapshot.begin(), snapshot.end());
  const double range = *hi_it - *lo_it;
  if (range <= 0.0) return 0.0;
  double sum = 0.0;
  for (size_t i = 1; i < snapshot.size(); ++i) {
    sum += std::fabs(snapshot[i] - snapshot[i - 1]);
  }
  return sum / (static_cast<double>(snapshot.size() - 1) * range);
}

double TemporalRoughness(const core::Trajectory& trajectory, int axis) {
  const size_t m = trajectory.num_snapshots();
  const size_t n = trajectory.num_particles();
  if (m < 2 || n == 0) return 0.0;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const core::Snapshot& s : trajectory.snapshots) {
    for (double v : s.axes[axis]) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double range = hi - lo;
  if (range <= 0.0) return 0.0;

  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 1; t < m; ++t) {
    const auto& prev = trajectory.snapshots[t - 1].axes[axis];
    const auto& cur = trajectory.snapshots[t].axes[axis];
    for (size_t i = 0; i < n; ++i) {
      sum += std::fabs(cur[i] - prev[i]);
      ++count;
    }
  }
  return sum / (static_cast<double>(count) * range);
}

}  // namespace mdz::analysis
