#include "analysis/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mdz::analysis {

ErrorMetrics ComputeErrorMetrics(std::span<const double> original,
                                 std::span<const double> decoded) {
  ErrorMetrics m;
  m.count = std::min(original.size(), decoded.size());
  if (m.count == 0) return m;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum_sq = 0.0;
  for (size_t i = 0; i < m.count; ++i) {
    const double err = std::fabs(original[i] - decoded[i]);
    m.max_error = std::max(m.max_error, err);
    sum_sq += err * err;
    lo = std::min(lo, original[i]);
    hi = std::max(hi, original[i]);
  }
  m.value_range = hi - lo;
  const double rmse = std::sqrt(sum_sq / static_cast<double>(m.count));
  if (m.value_range > 0.0) {
    m.nrmse = rmse / m.value_range;
    m.psnr = (rmse > 0.0)
                 ? 20.0 * std::log10(m.value_range / rmse)
                 : std::numeric_limits<double>::infinity();
  }
  return m;
}

ErrorMetrics ComputeAxisErrorMetrics(const core::Trajectory& original,
                                     const core::Trajectory& decoded,
                                     int axis) {
  std::vector<double> orig = original.FlattenAxis(axis);
  std::vector<double> dec = decoded.FlattenAxis(axis);
  return ComputeErrorMetrics(orig, dec);
}

double SimilarityToInitial(std::span<const double> initial,
                           std::span<const double> snapshot, double tau) {
  const size_t n = std::min(initial.size(), snapshot.size());
  if (n == 0) return 0.0;
  size_t unchanged = 0;
  for (size_t i = 0; i < n; ++i) {
    const double denom = snapshot[i];
    if (denom == 0.0) {
      if (initial[i] == 0.0) ++unchanged;
      continue;
    }
    if (std::fabs((snapshot[i] - initial[i]) / denom) < tau) ++unchanged;
  }
  return static_cast<double>(unchanged) / static_cast<double>(n);
}

}  // namespace mdz::analysis
