#include "analysis/dynamics.h"

#include <algorithm>
#include <cmath>

namespace mdz::analysis {

namespace {

inline double Sq(double x) { return x * x; }

}  // namespace

Result<std::vector<double>> MeanSquaredDisplacement(
    const core::Trajectory& trajectory, size_t max_lag) {
  const size_t m = trajectory.num_snapshots();
  const size_t n = trajectory.num_particles();
  if (m < 2 || n == 0) {
    return Status::InvalidArgument("trajectory too small for MSD");
  }
  max_lag = std::min(max_lag, m - 1);
  if (max_lag == 0) return Status::InvalidArgument("max_lag must be >= 1");

  std::vector<double> msd(max_lag, 0.0);
  for (size_t lag = 1; lag <= max_lag; ++lag) {
    double sum = 0.0;
    size_t count = 0;
    // Stride origins for long trajectories to keep this O(m * n) per lag.
    const size_t origin_stride = std::max<size_t>(1, (m - lag) / 32);
    for (size_t t = 0; t + lag < m; t += origin_stride) {
      const core::Snapshot& a = trajectory.snapshots[t];
      const core::Snapshot& b = trajectory.snapshots[t + lag];
      for (size_t i = 0; i < n; ++i) {
        sum += Sq(b.axes[0][i] - a.axes[0][i]) +
               Sq(b.axes[1][i] - a.axes[1][i]) +
               Sq(b.axes[2][i] - a.axes[2][i]);
      }
      count += n;
    }
    msd[lag - 1] = sum / static_cast<double>(count);
  }
  return msd;
}

Result<std::vector<double>> DisplacementAutocorrelation(
    const core::Trajectory& trajectory, size_t max_lag) {
  const size_t m = trajectory.num_snapshots();
  const size_t n = trajectory.num_particles();
  if (m < 3 || n == 0) {
    return Status::InvalidArgument("trajectory too small for autocorrelation");
  }
  const size_t n_disp = m - 1;  // displacement frames
  max_lag = std::min(max_lag, n_disp - 1);

  std::vector<double> corr(max_lag + 1, 0.0);
  std::vector<size_t> counts(max_lag + 1, 0);
  const size_t origin_stride = std::max<size_t>(1, n_disp / 64);

  auto displacement = [&](size_t t, size_t i, int axis) {
    return trajectory.snapshots[t + 1].axes[axis][i] -
           trajectory.snapshots[t].axes[axis][i];
  };

  for (size_t t = 0; t < n_disp; t += origin_stride) {
    for (size_t lag = 0; lag <= max_lag && t + lag < n_disp; ++lag) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        for (int axis = 0; axis < 3; ++axis) {
          dot += displacement(t, i, axis) * displacement(t + lag, i, axis);
        }
      }
      corr[lag] += dot;
      counts[lag] += n;
    }
  }
  if (counts[0] == 0 || corr[0] == 0.0) {
    return Status::InvalidArgument("degenerate trajectory (no displacement)");
  }
  const double norm = corr[0] / static_cast<double>(counts[0]);
  std::vector<double> out(max_lag + 1);
  for (size_t lag = 0; lag <= max_lag; ++lag) {
    out[lag] = counts[lag] == 0
                   ? 0.0
                   : (corr[lag] / static_cast<double>(counts[lag])) / norm;
  }
  return out;
}

double CurveMaxRelativeDeviation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(a[i]));
  if (scale == 0.0) return 0.0;
  double dev = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dev = std::max(dev, std::fabs(a[i] - b[i]));
  }
  return dev / scale;
}

}  // namespace mdz::analysis
