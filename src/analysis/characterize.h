#ifndef MDZ_ANALYSIS_CHARACTERIZE_H_
#define MDZ_ANALYSIS_CHARACTERIZE_H_

#include <span>
#include <vector>

#include "core/trajectory.h"

namespace mdz::analysis {

// Dataset characterization used by the Fig. 3/4/5 benches and the adaptive
// design discussion (paper Section V).

// Histogram of values over `bins` equal-width buckets spanning [min, max].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<size_t> counts;

  double BinCenter(size_t i) const {
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * width;
  }
};

Histogram ComputeHistogram(std::span<const double> values, int bins);

// Number of local maxima in the histogram whose height exceeds
// `min_peak_fraction` of the tallest bin. Multi-peak distributions (paper
// Fig. 4 a/c/d) indicate level clustering.
int CountHistogramPeaks(const Histogram& histogram,
                        double min_peak_fraction = 0.05);

// Spatial roughness: mean |d[i] - d[i-1]| within a snapshot, normalized by
// the value range. High values = non-smooth in space (takeaway 1).
double SpatialRoughness(std::span<const double> snapshot);

// Temporal smoothness: mean |S_t[i] - S_{t-1}[i]| across consecutive
// snapshots, normalized by the value range (takeaway 4; low = smooth).
double TemporalRoughness(const core::Trajectory& trajectory, int axis);

}  // namespace mdz::analysis

#endif  // MDZ_ANALYSIS_CHARACTERIZE_H_
