#ifndef MDZ_ANALYSIS_RDF_H_
#define MDZ_ANALYSIS_RDF_H_

#include <vector>

#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::analysis {

// Radial distribution function g(r) (paper Fig. 14): the probability of
// finding a particle at distance r from a reference particle, normalized by
// the ideal-gas density. Computed with periodic minimum-image distances when
// the trajectory has a box, plain distances otherwise.
struct RdfOptions {
  double r_max = 8.0;
  int bins = 160;
  // Snapshots to average over (stride through the trajectory); 0 = all.
  size_t max_snapshots = 8;
};

struct RdfResult {
  std::vector<double> r;  // bin centers
  std::vector<double> g;  // g(r) per bin
};

Result<RdfResult> ComputeRdf(const core::Trajectory& trajectory,
                             const RdfOptions& options = RdfOptions());

// Max |g1 - g2| over bins: a scalar "is the physics preserved" score used by
// the Fig. 14 bench and tests.
double RdfMaxDeviation(const RdfResult& a, const RdfResult& b);

}  // namespace mdz::analysis

#endif  // MDZ_ANALYSIS_RDF_H_
