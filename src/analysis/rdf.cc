#include "analysis/rdf.h"

#include <algorithm>
#include <cmath>

#include "md/box.h"
#include "md/cell_list.h"
#include "md/vec3.h"

namespace mdz::analysis {

Result<RdfResult> ComputeRdf(const core::Trajectory& trajectory,
                             const RdfOptions& options) {
  if (trajectory.num_snapshots() == 0 || trajectory.num_particles() < 2) {
    return Status::InvalidArgument("trajectory too small for RDF");
  }
  if (options.r_max <= 0.0 || options.bins <= 0) {
    return Status::InvalidArgument("bad RDF options");
  }

  const size_t n = trajectory.num_particles();
  const bool periodic = trajectory.box[0] > 0.0 && trajectory.box[1] > 0.0 &&
                        trajectory.box[2] > 0.0;
  double r_max = options.r_max;
  if (periodic) {
    const double half_min_box =
        0.5 * std::min({trajectory.box[0], trajectory.box[1],
                        trajectory.box[2]});
    r_max = std::min(r_max, half_min_box);
  }
  const double dr = r_max / options.bins;

  const size_t stride =
      (options.max_snapshots == 0 ||
       trajectory.num_snapshots() <= options.max_snapshots)
          ? 1
          : trajectory.num_snapshots() / options.max_snapshots;

  std::vector<double> histogram(options.bins, 0.0);
  size_t used_snapshots = 0;

  const md::Box box(periodic ? trajectory.box[0] : 1.0,
                    periodic ? trajectory.box[1] : 1.0,
                    periodic ? trajectory.box[2] : 1.0);

  std::vector<md::Vec3> pos(n);
  for (size_t s = 0; s < trajectory.num_snapshots(); s += stride) {
    const core::Snapshot& snap = trajectory.snapshots[s];
    for (size_t i = 0; i < n; ++i) {
      pos[i] = {snap.axes[0][i], snap.axes[1][i], snap.axes[2][i]};
    }
    ++used_snapshots;
    if (periodic) {
      md::CellList cells(box, r_max);
      cells.Build(pos);
      cells.ForEachPair(pos, [&](size_t, size_t, const md::Vec3&, double r2) {
        const int bin = static_cast<int>(std::sqrt(r2) / dr);
        if (bin < options.bins) histogram[bin] += 2.0;  // count both (i,j),(j,i)
      });
    } else {
      const double r_max2 = r_max * r_max;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          const md::Vec3 d = pos[i] - pos[j];
          const double r2 = d.norm2();
          if (r2 < r_max2) {
            const int bin = static_cast<int>(std::sqrt(r2) / dr);
            if (bin < options.bins) histogram[bin] += 2.0;
          }
        }
      }
    }
  }

  // Normalize by the ideal-gas expectation. For non-periodic systems use the
  // bounding-box volume as the density reference.
  double volume;
  if (periodic) {
    volume = trajectory.box[0] * trajectory.box[1] * trajectory.box[2];
  } else {
    double lo[3], hi[3];
    for (int a = 0; a < 3; ++a) {
      lo[a] = 1e300;
      hi[a] = -1e300;
    }
    const core::Snapshot& snap = trajectory.snapshots[0];
    for (int a = 0; a < 3; ++a) {
      for (double v : snap.axes[a]) {
        lo[a] = std::min(lo[a], v);
        hi[a] = std::max(hi[a], v);
      }
    }
    volume = std::max(1e-30, (hi[0] - lo[0]) * (hi[1] - lo[1]) *
                                 (hi[2] - lo[2]));
  }
  const double density = static_cast<double>(n) / volume;

  RdfResult result;
  result.r.resize(options.bins);
  result.g.resize(options.bins);
  const double norm =
      static_cast<double>(used_snapshots) * static_cast<double>(n) * density;
  for (int b = 0; b < options.bins; ++b) {
    const double r_lo = b * dr;
    const double r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * 3.14159265358979323846 *
        (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    result.r[b] = r_lo + 0.5 * dr;
    result.g[b] = histogram[b] / (norm * shell);
  }
  return result;
}

double RdfMaxDeviation(const RdfResult& a, const RdfResult& b) {
  const size_t n = std::min(a.g.size(), b.g.size());
  double dev = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dev = std::max(dev, std::fabs(a.g[i] - b.g[i]));
  }
  return dev;
}

}  // namespace mdz::analysis
