#ifndef MDZ_ANALYSIS_METRICS_H_
#define MDZ_ANALYSIS_METRICS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/trajectory.h"

namespace mdz::analysis {

// Distortion metrics used throughout the paper's evaluation (Section VII-C).
struct ErrorMetrics {
  double max_error = 0.0;  // max |orig - decoded|
  double nrmse = 0.0;      // RMSE / value range
  double psnr = 0.0;       // 20 log10(range / RMSE), dB
  double value_range = 0.0;
  size_t count = 0;
};

ErrorMetrics ComputeErrorMetrics(std::span<const double> original,
                                 std::span<const double> decoded);

// Aggregates per-axis field errors over a whole trajectory axis.
ErrorMetrics ComputeAxisErrorMetrics(const core::Trajectory& original,
                                     const core::Trajectory& decoded,
                                     int axis);

// Bits per value of the compressed representation.
inline double BitRate(size_t compressed_bytes, size_t value_count) {
  return value_count == 0
             ? 0.0
             : 8.0 * static_cast<double>(compressed_bytes) /
                   static_cast<double>(value_count);
}

inline double CompressionRatio(size_t raw_bytes, size_t compressed_bytes) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(raw_bytes) /
                                     static_cast<double>(compressed_bytes);
}

// Paper Eq. (2): fraction of values whose relative change w.r.t. snapshot 0
// is below tau.
double SimilarityToInitial(std::span<const double> initial,
                           std::span<const double> snapshot, double tau);

}  // namespace mdz::analysis

#endif  // MDZ_ANALYSIS_METRICS_H_
