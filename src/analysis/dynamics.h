#ifndef MDZ_ANALYSIS_DYNAMICS_H_
#define MDZ_ANALYSIS_DYNAMICS_H_

#include <vector>

#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::analysis {

// Dynamical observables used to check that lossy compression preserves the
// physics beyond static structure (RDF): mean squared displacement and the
// displacement autocorrelation function. Both operate on unwrapped
// coordinates (the trajectory as dumped).

// MSD(dt) = < |r_i(t + dt) - r_i(t)|^2 >_{i,t} for dt = 1..max_lag.
// Result[k] corresponds to lag k+1.
Result<std::vector<double>> MeanSquaredDisplacement(
    const core::Trajectory& trajectory, size_t max_lag);

// Normalized autocorrelation of per-snapshot displacement vectors
// d_i(t) = r_i(t+1) - r_i(t):
//   C(dt) = < d_i(t) . d_i(t+dt) > / < |d_i(t)|^2 >,  dt = 0..max_lag.
// C(0) = 1 by construction; liquids decay to ~0, solids oscillate negative
// (vibrational rebound). Serves as a discrete velocity-autocorrelation proxy
// when only positions are stored.
Result<std::vector<double>> DisplacementAutocorrelation(
    const core::Trajectory& trajectory, size_t max_lag);

// Max absolute difference between two MSD/autocorrelation curves, relative
// to the first curve's max magnitude. Scalar "is the dynamics preserved"
// score analogous to RdfMaxDeviation.
double CurveMaxRelativeDeviation(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace mdz::analysis

#endif  // MDZ_ANALYSIS_DYNAMICS_H_
