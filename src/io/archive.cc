#include "io/archive.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "archive/reader.h"
#include "archive/writer.h"
#include "util/byte_buffer.h"
#include "util/hash.h"
#include "util/unaligned.h"

namespace mdz::io {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'Z', 'A'};
constexpr uint8_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteArchive(const Archive& archive, const std::string& path) {
  ByteWriter w;
  w.PutBytes(kMagic, sizeof(kMagic));
  w.Put<uint8_t>(kVersion);
  w.PutVarint(archive.name.size());
  w.PutBytes(archive.name.data(), archive.name.size());
  for (double b : archive.box) w.Put<double>(b);
  for (const auto& axis : archive.data.axes) {
    w.PutBlob(axis);
  }
  const uint64_t checksum = Fnv1a64(w.bytes());
  w.Put<uint64_t>(checksum);

  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  if (std::fwrite(w.bytes().data(), 1, w.size(), file.get()) != w.size()) {
    return Status::Internal("short write: " + path);
  }
  if (std::fflush(file.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Status WriteArchiveV2(const Archive& archive, const std::string& path) {
  return archive::WriteV2(archive.data, archive.name, archive.box, path);
}

Result<Archive> ReadArchive(const std::string& path) {
  // Version sniffing: v2 archives open through the frame-indexed reader and
  // reassemble their original axis streams; everything else (including files
  // too short to sniff) falls through to the v1 parser and its errors.
  uint8_t version = 0;
  if (archive::SniffArchiveVersion(path, &version) &&
      version == archive::kVersionV2) {
    MDZ_ASSIGN_OR_RETURN(auto reader, archive::ArchiveReader::Open(path));
    Archive archive;
    MDZ_ASSIGN_OR_RETURN(archive.data, reader->Reassemble());
    archive.name = reader->name();
    archive.box = reader->box();
    return archive;
  }

  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for reading: " + path);
  }
  std::fseek(file.get(), 0, SEEK_END);
  const long size = std::ftell(file.get());
  std::fseek(file.get(), 0, SEEK_SET);
  if (size < static_cast<long>(sizeof(kMagic) + 1 + sizeof(uint64_t))) {
    return Status::Corruption("archive too small: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::Corruption("cannot read archive: " + path);
  }

  // Verify the trailing checksum before parsing anything.
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  const uint64_t stored = LoadU<uint64_t>(bytes.data() + payload_size);
  const uint64_t computed =
      Fnv1a64(std::span<const uint8_t>(bytes.data(), payload_size));
  if (stored != computed) {
    return Status::Corruption("archive checksum mismatch: " + path);
  }

  ByteReader r(std::span<const uint8_t>(bytes.data(), payload_size));
  char magic[4];
  MDZ_RETURN_IF_ERROR(r.GetBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::Corruption("not an MDZ archive: " + path);
  }
  uint8_t file_version = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&file_version));
  if (file_version != kVersion) {
    return Status::Corruption("unsupported archive version");
  }

  Archive archive;
  uint64_t name_len = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&name_len));
  if (name_len > 4096) return Status::Corruption("archive name too long");
  archive.name.resize(name_len);
  MDZ_RETURN_IF_ERROR(r.GetBytes(archive.name.data(), name_len));
  for (double& b : archive.box) {
    MDZ_RETURN_IF_ERROR(r.Get(&b));
  }
  for (auto& axis : archive.data.axes) {
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    axis.assign(blob.begin(), blob.end());
  }
  return archive;
}

Result<core::Trajectory> DecompressArchive(const Archive& archive) {
  MDZ_ASSIGN_OR_RETURN(core::Trajectory trajectory,
                       core::DecompressTrajectory(archive.data));
  trajectory.name = archive.name;
  trajectory.box = archive.box;
  return trajectory;
}

}  // namespace mdz::io
