#ifndef MDZ_IO_TRAJECTORY_IO_H_
#define MDZ_IO_TRAJECTORY_IO_H_

#include <string>

#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::io {

// Trajectory file I/O for the command-line tools and examples.
//
// Two formats:
//  * Binary (".mdtraj"): magic + N/M/box header + per-snapshot xyz doubles.
//    Compact, exact, fast; the native interchange format of this repo.
//  * XYZ text (".xyz"): the ubiquitous plain-text format understood by VMD /
//    Ovito / ASE (atom count, comment, "El x y z" lines per frame). Lossy in
//    the textual sense (17 significant digits are written, so round-trips
//    are bit-exact for doubles).

// Binary trajectory magic, shared by the whole-file functions below and the
// streaming reader/writer in io/streaming.h.
inline constexpr char kBinaryTrajectoryMagic[8] = {'M', 'D', 'T', 'R',
                                                   'A', 'J', '0', '1'};

// --- Binary format ---------------------------------------------------------

Status WriteBinaryTrajectory(const core::Trajectory& trajectory,
                             const std::string& path);

Result<core::Trajectory> ReadBinaryTrajectory(const std::string& path);

// --- XYZ text format -------------------------------------------------------

Status WriteXyzTrajectory(const core::Trajectory& trajectory,
                          const std::string& path,
                          const std::string& element = "Ar");

Result<core::Trajectory> ReadXyzTrajectory(const std::string& path);

}  // namespace mdz::io

#endif  // MDZ_IO_TRAJECTORY_IO_H_
