#include "io/streaming.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "io/trajectory_io.h"

namespace mdz::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("unexpected end of file");
  }
  return Status::OK();
}

// --- Binary reader ---------------------------------------------------------

class BinaryTrajectoryReader final : public TrajectoryReader {
 public:
  static Result<std::unique_ptr<TrajectoryReader>> Open(
      FilePtr file, const std::string& path) {
    auto reader = std::unique_ptr<BinaryTrajectoryReader>(
        new BinaryTrajectoryReader());
    reader->file_ = std::move(file);
    std::FILE* f = reader->file_.get();
    char magic[sizeof(kBinaryTrajectoryMagic)];
    MDZ_RETURN_IF_ERROR(ReadAll(f, magic, sizeof(magic)));
    if (std::memcmp(magic, kBinaryTrajectoryMagic, sizeof(magic)) != 0) {
      return Status::Corruption("not an mdtraj binary file: " + path);
    }
    MDZ_RETURN_IF_ERROR(ReadAll(f, &reader->n_, sizeof(reader->n_)));
    MDZ_RETURN_IF_ERROR(ReadAll(f, &reader->m_, sizeof(reader->m_)));
    if (reader->n_ == 0 || reader->m_ == 0 || reader->n_ > (1ull << 34) ||
        reader->m_ > (1ull << 34)) {
      return Status::Corruption("implausible trajectory dimensions");
    }
    MDZ_RETURN_IF_ERROR(ReadAll(f, reader->box_.data(), sizeof(double) * 3));
    uint32_t name_len = 0;
    MDZ_RETURN_IF_ERROR(ReadAll(f, &name_len, sizeof(name_len)));
    if (name_len > 4096) {
      return Status::Corruption("trajectory name too long");
    }
    reader->name_.resize(name_len);
    MDZ_RETURN_IF_ERROR(ReadAll(f, reader->name_.data(), name_len));
    return std::unique_ptr<TrajectoryReader>(std::move(reader));
  }

  TrajectoryFormat format() const override { return TrajectoryFormat::kBinary; }
  size_t num_particles() const override { return n_; }
  uint64_t num_snapshots() const override { return m_; }
  const std::string& name() const override { return name_; }
  const std::array<double, 3>& box() const override { return box_; }

  Result<bool> Next(core::Snapshot* out) override {
    if (read_ >= m_) return false;
    core::Snapshot snap;
    for (int axis = 0; axis < 3; ++axis) {
      snap.axes[axis].resize(n_);
      MDZ_RETURN_IF_ERROR(
          ReadAll(file_.get(), snap.axes[axis].data(), sizeof(double) * n_));
    }
    ++read_;
    *out = std::move(snap);
    return true;
  }

 private:
  BinaryTrajectoryReader() = default;

  FilePtr file_;
  uint64_t n_ = 0;
  uint64_t m_ = 0;
  uint64_t read_ = 0;
  std::array<double, 3> box_ = {0, 0, 0};
  std::string name_;
};

// --- XYZ reader ------------------------------------------------------------

class XyzTrajectoryReader final : public TrajectoryReader {
 public:
  static Result<std::unique_ptr<TrajectoryReader>> Open(
      FilePtr file, const std::string& path) {
    auto reader =
        std::unique_ptr<XyzTrajectoryReader>(new XyzTrajectoryReader());
    reader->file_ = std::move(file);
    reader->path_ = path;
    // The atom count lives in the first frame header, so the stream's
    // num_particles is only known after consuming it; remember that Next()
    // must not read another header for frame 0.
    MDZ_ASSIGN_OR_RETURN(const bool more, reader->ReadFrameHeader());
    if (!more) return Status::Corruption("empty XYZ file: " + path);
    reader->header_pending_ = true;
    return std::unique_ptr<TrajectoryReader>(std::move(reader));
  }

  TrajectoryFormat format() const override { return TrajectoryFormat::kXyz; }
  size_t num_particles() const override { return n_; }
  uint64_t num_snapshots() const override { return 0; }  // unknown up front
  const std::string& name() const override { return name_; }
  const std::array<double, 3>& box() const override { return box_; }

  Result<bool> Next(core::Snapshot* out) override {
    if (done_) return false;
    if (!header_pending_) {
      MDZ_ASSIGN_OR_RETURN(const bool more, ReadFrameHeader());
      if (!more) {
        done_ = true;
        return false;
      }
    }
    header_pending_ = false;
    core::Snapshot snap;
    for (auto& axis : snap.axes) axis.resize(n_);
    char line[512];
    for (uint64_t i = 0; i < n_; ++i) {
      if (!ReadLine(line, sizeof(line))) {
        return Status::Corruption("truncated XYZ frame (missing atoms) at " +
                                  Where());
      }
      char element[64];
      double x, y, z;
      if (std::sscanf(line, "%63s %lf %lf %lf", element, &x, &y, &z) != 4) {
        return Status::Corruption("bad XYZ atom line at " + Where());
      }
      if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(z)) {
        return Status::InvalidArgument(
            "non-finite coordinate at " + Where() +
            "; no error bound can hold for nan/inf");
      }
      snap.axes[0][i] = x;
      snap.axes[1][i] = y;
      snap.axes[2][i] = z;
    }
    *out = std::move(snap);
    return true;
  }

 private:
  XyzTrajectoryReader() = default;

  bool ReadLine(char* buf, size_t cap) {
    if (std::fgets(buf, static_cast<int>(cap), file_.get()) == nullptr) {
      return false;
    }
    ++line_;
    return true;
  }

  std::string Where() const {
    return path_ + " line " + std::to_string(line_);
  }

  // Consumes one "count \n comment" frame preamble. False at clean EOF.
  Result<bool> ReadFrameHeader() {
    char line[512];
    if (!ReadLine(line, sizeof(line))) return false;
    uint64_t n = 0;
    if (std::sscanf(line, "%" SCNu64, &n) != 1 || n == 0) {
      return Status::Corruption("bad XYZ frame header at " + Where());
    }
    if (n_ != 0 && n != n_) {
      return Status::Corruption("XYZ frames have inconsistent atom counts at " +
                                Where());
    }
    n_ = n;
    if (!ReadLine(line, sizeof(line))) {
      return Status::Corruption("truncated XYZ frame (missing comment) at " +
                                Where());
    }
    double bx, by, bz;
    if (std::sscanf(line, "%*s %*s box %lf %lf %lf", &bx, &by, &bz) == 3) {
      box_ = {bx, by, bz};
    }
    return true;
  }

  FilePtr file_;
  std::string path_;
  uint64_t n_ = 0;
  size_t line_ = 0;  // 1-based number of the last line read
  bool header_pending_ = false;
  bool done_ = false;
  std::array<double, 3> box_ = {0, 0, 0};
  std::string name_;
};

// --- Binary writer ---------------------------------------------------------

class BinaryTrajectoryWriter final : public TrajectoryWriter {
 public:
  static Result<std::unique_ptr<TrajectoryWriter>> Open(
      const std::string& path, size_t num_particles,
      const TrajectoryWriter::Options& options) {
    auto writer = std::unique_ptr<BinaryTrajectoryWriter>(
        new BinaryTrajectoryWriter());
    writer->file_.reset(std::fopen(path.c_str(), "wb"));
    if (writer->file_ == nullptr) {
      return Status::Internal("cannot open for writing: " + path);
    }
    std::FILE* f = writer->file_.get();
    writer->n_ = num_particles;
    MDZ_RETURN_IF_ERROR(WriteAll(f, kBinaryTrajectoryMagic,
                                 sizeof(kBinaryTrajectoryMagic)));
    const uint64_t n = num_particles;
    MDZ_RETURN_IF_ERROR(WriteAll(f, &n, sizeof(n)));
    // Snapshot count placeholder; Finish() back-patches it once known, which
    // keeps the output byte-identical to the whole-trajectory writer.
    const uint64_t m = 0;
    MDZ_RETURN_IF_ERROR(WriteAll(f, &m, sizeof(m)));
    MDZ_RETURN_IF_ERROR(WriteAll(f, options.box.data(), sizeof(double) * 3));
    const uint32_t name_len =
        static_cast<uint32_t>(std::min<size_t>(options.name.size(), 4096));
    MDZ_RETURN_IF_ERROR(WriteAll(f, &name_len, sizeof(name_len)));
    MDZ_RETURN_IF_ERROR(WriteAll(f, options.name.data(), name_len));
    return std::unique_ptr<TrajectoryWriter>(std::move(writer));
  }

  Status Append(const core::Snapshot& snapshot) override {
    for (int axis = 0; axis < 3; ++axis) {
      if (snapshot.axes[axis].size() != n_) {
        return Status::InvalidArgument("snapshot size != num_particles");
      }
    }
    for (int axis = 0; axis < 3; ++axis) {
      MDZ_RETURN_IF_ERROR(WriteAll(file_.get(), snapshot.axes[axis].data(),
                                   sizeof(double) * n_));
    }
    ++m_;
    return Status::OK();
  }

  Status Finish() override {
    if (finished_) return Status::FailedPrecondition("Finish called twice");
    // m sits after the 8-byte magic and the 8-byte particle count.
    if (std::fseek(file_.get(), 16, SEEK_SET) != 0) {
      return Status::Internal("cannot seek to patch snapshot count");
    }
    MDZ_RETURN_IF_ERROR(WriteAll(file_.get(), &m_, sizeof(m_)));
    if (std::fflush(file_.get()) != 0) return Status::Internal("flush failed");
    finished_ = true;
    return Status::OK();
  }

 private:
  BinaryTrajectoryWriter() = default;

  FilePtr file_;
  size_t n_ = 0;
  uint64_t m_ = 0;
  bool finished_ = false;
};

// --- XYZ writer ------------------------------------------------------------

class XyzTrajectoryWriter final : public TrajectoryWriter {
 public:
  static Result<std::unique_ptr<TrajectoryWriter>> Open(
      const std::string& path, size_t num_particles,
      const TrajectoryWriter::Options& options) {
    auto writer =
        std::unique_ptr<XyzTrajectoryWriter>(new XyzTrajectoryWriter());
    writer->file_.reset(std::fopen(path.c_str(), "w"));
    if (writer->file_ == nullptr) {
      return Status::Internal("cannot open for writing: " + path);
    }
    writer->n_ = num_particles;
    writer->options_ = options;
    return std::unique_ptr<TrajectoryWriter>(std::move(writer));
  }

  Status Append(const core::Snapshot& snapshot) override {
    for (int axis = 0; axis < 3; ++axis) {
      if (snapshot.axes[axis].size() != n_) {
        return Status::InvalidArgument("snapshot size != num_particles");
      }
    }
    std::FILE* f = file_.get();
    std::fprintf(f, "%zu\nframe %zu box %.17g %.17g %.17g\n", n_, frame_,
                 options_.box[0], options_.box[1], options_.box[2]);
    for (size_t i = 0; i < n_; ++i) {
      std::fprintf(f, "%s %.17g %.17g %.17g\n", options_.element.c_str(),
                   snapshot.axes[0][i], snapshot.axes[1][i],
                   snapshot.axes[2][i]);
    }
    if (std::ferror(f) != 0) return Status::Internal("short write");
    ++frame_;
    return Status::OK();
  }

  Status Finish() override {
    if (finished_) return Status::FailedPrecondition("Finish called twice");
    if (std::fflush(file_.get()) != 0) return Status::Internal("flush failed");
    finished_ = true;
    return Status::OK();
  }

 private:
  XyzTrajectoryWriter() = default;

  FilePtr file_;
  size_t n_ = 0;
  size_t frame_ = 0;
  bool finished_ = false;
  TrajectoryWriter::Options options_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Result<std::unique_ptr<TrajectoryReader>> TrajectoryReader::Open(
    const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for reading: " + path);
  }
  char magic[sizeof(kBinaryTrajectoryMagic)] = {0};
  const size_t got = std::fread(magic, 1, sizeof(magic), file.get());
  std::rewind(file.get());
  if (got == sizeof(magic) &&
      std::memcmp(magic, kBinaryTrajectoryMagic, sizeof(magic)) == 0) {
    return BinaryTrajectoryReader::Open(std::move(file), path);
  }
  return XyzTrajectoryReader::Open(std::move(file), path);
}

Result<std::unique_ptr<TrajectoryWriter>> TrajectoryWriter::Open(
    const std::string& path, size_t num_particles, const Options& options) {
  if (EndsWith(path, ".xyz")) {
    return XyzTrajectoryWriter::Open(path, num_particles, options);
  }
  return BinaryTrajectoryWriter::Open(path, num_particles, options);
}

// --- Archive adapters ------------------------------------------------------

ArchiveSink::ArchiveSink(std::unique_ptr<archive::ArchiveWriter> writer)
    : writer_(std::move(writer)) {}

ArchiveSink::~ArchiveSink() = default;

void ArchiveSink::set_before_finish(
    std::function<void(archive::ArchiveWriter&)> hook) {
  before_finish_ = std::move(hook);
}

Status ArchiveSink::Append(const core::Snapshot& snapshot) {
  return writer_->Append(snapshot);
}

Status ArchiveSink::Finish() {
  if (before_finish_) before_finish_(*writer_);
  return writer_->Finish();
}

size_t ArchiveSink::buffered_snapshots() const {
  return writer_->buffered_snapshots();
}

ArchiveSnapshotSource::~ArchiveSnapshotSource() = default;

Result<std::unique_ptr<ArchiveSnapshotSource>> ArchiveSnapshotSource::Open(
    const std::string& path, size_t chunk_snapshots) {
  auto source = std::unique_ptr<ArchiveSnapshotSource>(
      new ArchiveSnapshotSource());
  MDZ_ASSIGN_OR_RETURN(source->reader_, archive::ArchiveReader::Open(path));
  source->total_ = source->reader_->num_snapshots();
  size_t chunk = chunk_snapshots;
  if (chunk == 0) {
    const auto& frames = source->reader_->footer().frames;
    chunk = frames.empty() ? 1 : static_cast<size_t>(frames[0].s_count);
  }
  source->chunk_size_ = std::max<size_t>(chunk, 1);
  return source;
}

size_t ArchiveSnapshotSource::num_particles() const {
  return reader_->num_particles();
}

Result<bool> ArchiveSnapshotSource::Next(core::Snapshot* out) {
  if (chunk_pos_ >= chunk_.size()) {
    if (next_index_ >= total_) return false;
    const size_t count = std::min(chunk_size_, total_ - next_index_);
    MDZ_ASSIGN_OR_RETURN(chunk_, reader_->ReadSnapshots(next_index_, count));
    next_index_ += count;
    chunk_pos_ = 0;
  }
  *out = std::move(chunk_[chunk_pos_++]);
  return true;
}

}  // namespace mdz::io
