#ifndef MDZ_IO_STREAMING_H_
#define MDZ_IO_STREAMING_H_

// File-format adapters for the core streaming pipeline (core/streaming.h):
// trajectory files as SnapshotSources/SnapshotSinks and the v2 archive as
// both, so the CLI's --stream paths compress and decompress with O(N * BS)
// peak memory however long the trajectory is.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "archive/reader.h"
#include "archive/writer.h"
#include "core/streaming.h"
#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::io {

enum class TrajectoryFormat : uint8_t { kBinary, kXyz };

// Streaming reader over a trajectory file, one snapshot in memory at a time.
// Open() sniffs the format from the file's first bytes (the binary magic vs
// text). XYZ atom lines are validated as they are parsed: a malformed or
// non-finite coordinate fails Next() with InvalidArgument naming the file
// and line — nan/inf never enter the pipeline, where no error bound could
// hold for them.
class TrajectoryReader : public core::SnapshotSource {
 public:
  static Result<std::unique_ptr<TrajectoryReader>> Open(
      const std::string& path);

  virtual TrajectoryFormat format() const = 0;

  // Total snapshots when the format records it up front (binary); 0 when it
  // is only known at end of stream (XYZ).
  virtual uint64_t num_snapshots() const = 0;

  // Trajectory name from the header (binary; empty for XYZ).
  virtual const std::string& name() const = 0;

  // Binary: the header box. XYZ: the most recent frame comment's box (our
  // writer stamps it on every frame), {0,0,0} until one is seen.
  virtual const std::array<double, 3>& box() const = 0;
};

// Streaming writer producing files byte-identical to WriteBinaryTrajectory /
// WriteXyzTrajectory without holding the trajectory: the binary header's
// snapshot count is back-patched by Finish(), XYZ frames are emitted as they
// arrive.
class TrajectoryWriter : public core::SnapshotSink {
 public:
  struct Options {
    std::string name;                     // binary header name
    std::array<double, 3> box = {0, 0, 0};
    std::string element = "Ar";           // XYZ atom label
  };

  // Picks XYZ when `path` ends in ".xyz", binary otherwise.
  static Result<std::unique_ptr<TrajectoryWriter>> Open(
      const std::string& path, size_t num_particles, const Options& options);
};

// SnapshotSink over an archive::ArchiveWriter (from Create or Reopen). The
// optional before-finish hook runs right before the footer is sealed — the
// place to stamp name/box that a source only knows once its file has been
// read (an XYZ box, for instance).
class ArchiveSink : public core::SnapshotSink {
 public:
  explicit ArchiveSink(std::unique_ptr<archive::ArchiveWriter> writer);
  ~ArchiveSink() override;

  void set_before_finish(std::function<void(archive::ArchiveWriter&)> hook);

  Status Append(const core::Snapshot& snapshot) override;
  Status Finish() override;
  size_t buffered_snapshots() const override;

  archive::ArchiveWriter& writer() { return *writer_; }

 private:
  std::unique_ptr<archive::ArchiveWriter> writer_;
  std::function<void(archive::ArchiveWriter&)> before_finish_;
};

// SnapshotSource over a v2 archive: decodes snapshots in stream order one
// buffer-sized chunk at a time (the reader's frame cache keeps the work per
// chunk at one decode per axis), never the whole trajectory.
class ArchiveSnapshotSource : public core::SnapshotSource {
 public:
  // `chunk_snapshots` = 0 derives the chunk from the archive's buffer size.
  static Result<std::unique_ptr<ArchiveSnapshotSource>> Open(
      const std::string& path, size_t chunk_snapshots = 0);
  ~ArchiveSnapshotSource() override;

  size_t num_particles() const override;
  Result<bool> Next(core::Snapshot* out) override;

  const archive::ArchiveReader& reader() const { return *reader_; }

 private:
  ArchiveSnapshotSource() = default;

  std::unique_ptr<archive::ArchiveReader> reader_;
  std::vector<core::Snapshot> chunk_;
  size_t chunk_pos_ = 0;
  size_t next_index_ = 0;
  size_t total_ = 0;
  size_t chunk_size_ = 1;
};

}  // namespace mdz::io

#endif  // MDZ_IO_STREAMING_H_
