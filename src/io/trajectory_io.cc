#include "io/trajectory_io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace mdz::io {

namespace {

constexpr char kBinaryMagic[8] = {'M', 'D', 'T', 'R', 'A', 'J', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::Corruption("unexpected end of file");
  }
  return Status::OK();
}

}  // namespace

Status WriteBinaryTrajectory(const core::Trajectory& trajectory,
                             const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), kBinaryMagic, sizeof(kBinaryMagic)));

  const uint64_t n = trajectory.num_particles();
  const uint64_t m = trajectory.num_snapshots();
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &n, sizeof(n)));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &m, sizeof(m)));
  MDZ_RETURN_IF_ERROR(
      WriteAll(file.get(), trajectory.box.data(), sizeof(double) * 3));
  const uint32_t name_len =
      static_cast<uint32_t>(std::min<size_t>(trajectory.name.size(), 4096));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &name_len, sizeof(name_len)));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), trajectory.name.data(), name_len));

  for (const core::Snapshot& snap : trajectory.snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      if (snap.axes[axis].size() != n) {
        return Status::InvalidArgument("ragged trajectory");
      }
      MDZ_RETURN_IF_ERROR(WriteAll(file.get(), snap.axes[axis].data(),
                                   sizeof(double) * n));
    }
  }
  if (std::fflush(file.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<core::Trajectory> ReadBinaryTrajectory(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for reading: " + path);
  }
  char magic[8];
  MDZ_RETURN_IF_ERROR(ReadAll(file.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::Corruption("not an mdtraj binary file: " + path);
  }
  uint64_t n = 0, m = 0;
  MDZ_RETURN_IF_ERROR(ReadAll(file.get(), &n, sizeof(n)));
  MDZ_RETURN_IF_ERROR(ReadAll(file.get(), &m, sizeof(m)));
  if (n == 0 || m == 0 || n > (1ull << 34) || m > (1ull << 34)) {
    return Status::Corruption("implausible trajectory dimensions");
  }

  core::Trajectory trajectory;
  MDZ_RETURN_IF_ERROR(
      ReadAll(file.get(), trajectory.box.data(), sizeof(double) * 3));
  uint32_t name_len = 0;
  MDZ_RETURN_IF_ERROR(ReadAll(file.get(), &name_len, sizeof(name_len)));
  if (name_len > 4096) return Status::Corruption("trajectory name too long");
  trajectory.name.resize(name_len);
  MDZ_RETURN_IF_ERROR(ReadAll(file.get(), trajectory.name.data(), name_len));
  trajectory.snapshots.resize(m);
  for (core::Snapshot& snap : trajectory.snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      snap.axes[axis].resize(n);
      MDZ_RETURN_IF_ERROR(
          ReadAll(file.get(), snap.axes[axis].data(), sizeof(double) * n));
    }
  }
  return trajectory;
}

Status WriteXyzTrajectory(const core::Trajectory& trajectory,
                          const std::string& path,
                          const std::string& element) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t n = trajectory.num_particles();
  for (size_t s = 0; s < trajectory.num_snapshots(); ++s) {
    const core::Snapshot& snap = trajectory.snapshots[s];
    std::fprintf(file.get(), "%zu\nframe %zu box %.17g %.17g %.17g\n", n, s,
                 trajectory.box[0], trajectory.box[1], trajectory.box[2]);
    for (size_t i = 0; i < n; ++i) {
      std::fprintf(file.get(), "%s %.17g %.17g %.17g\n", element.c_str(),
                   snap.axes[0][i], snap.axes[1][i], snap.axes[2][i]);
    }
  }
  if (std::fflush(file.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<core::Trajectory> ReadXyzTrajectory(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) {
    return Status::Internal("cannot open for reading: " + path);
  }
  core::Trajectory trajectory;
  char line[512];
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    uint64_t n = 0;
    if (std::sscanf(line, "%" SCNu64, &n) != 1 || n == 0) {
      return Status::Corruption("bad XYZ frame header");
    }
    // Comment line; pick up the box if our writer put it there.
    if (std::fgets(line, sizeof(line), file.get()) == nullptr) {
      return Status::Corruption("truncated XYZ frame (missing comment)");
    }
    double bx, by, bz;
    if (std::sscanf(line, "%*s %*s box %lf %lf %lf", &bx, &by, &bz) == 3) {
      trajectory.box = {bx, by, bz};
    }

    core::Snapshot snap;
    for (auto& axis : snap.axes) axis.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (std::fgets(line, sizeof(line), file.get()) == nullptr) {
        return Status::Corruption("truncated XYZ frame (missing atoms)");
      }
      char element[64];
      double x, y, z;
      if (std::sscanf(line, "%63s %lf %lf %lf", element, &x, &y, &z) != 4) {
        return Status::Corruption("bad XYZ atom line");
      }
      snap.axes[0][i] = x;
      snap.axes[1][i] = y;
      snap.axes[2][i] = z;
    }
    if (!trajectory.snapshots.empty() &&
        trajectory.snapshots[0].num_particles() != n) {
      return Status::Corruption("XYZ frames have inconsistent atom counts");
    }
    trajectory.snapshots.push_back(std::move(snap));
  }
  if (trajectory.snapshots.empty()) {
    return Status::Corruption("empty XYZ file");
  }
  return trajectory;
}

}  // namespace mdz::io
