#include "io/trajectory_io.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "io/streaming.h"

namespace mdz::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

// Drains a streaming reader into a whole-trajectory value. The box is read
// after the last frame so the XYZ reader's per-frame box updates keep their
// last-one-wins semantics.
Result<core::Trajectory> Collect(TrajectoryReader* reader) {
  core::Trajectory trajectory;
  core::Snapshot snapshot;
  while (true) {
    MDZ_ASSIGN_OR_RETURN(const bool more, reader->Next(&snapshot));
    if (!more) break;
    trajectory.snapshots.push_back(std::move(snapshot));
  }
  trajectory.name = reader->name();
  trajectory.box = reader->box();
  return trajectory;
}

}  // namespace

Status WriteBinaryTrajectory(const core::Trajectory& trajectory,
                             const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), kBinaryTrajectoryMagic,
                               sizeof(kBinaryTrajectoryMagic)));

  const uint64_t n = trajectory.num_particles();
  const uint64_t m = trajectory.num_snapshots();
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &n, sizeof(n)));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &m, sizeof(m)));
  MDZ_RETURN_IF_ERROR(
      WriteAll(file.get(), trajectory.box.data(), sizeof(double) * 3));
  const uint32_t name_len =
      static_cast<uint32_t>(std::min<size_t>(trajectory.name.size(), 4096));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), &name_len, sizeof(name_len)));
  MDZ_RETURN_IF_ERROR(WriteAll(file.get(), trajectory.name.data(), name_len));

  for (const core::Snapshot& snap : trajectory.snapshots) {
    for (int axis = 0; axis < 3; ++axis) {
      if (snap.axes[axis].size() != n) {
        return Status::InvalidArgument("ragged trajectory");
      }
      MDZ_RETURN_IF_ERROR(WriteAll(file.get(), snap.axes[axis].data(),
                                   sizeof(double) * n));
    }
  }
  if (std::fflush(file.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<core::Trajectory> ReadBinaryTrajectory(const std::string& path) {
  MDZ_ASSIGN_OR_RETURN(auto reader, TrajectoryReader::Open(path));
  if (reader->format() != TrajectoryFormat::kBinary) {
    return Status::Corruption("not an mdtraj binary file: " + path);
  }
  return Collect(reader.get());
}

Status WriteXyzTrajectory(const core::Trajectory& trajectory,
                          const std::string& path,
                          const std::string& element) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t n = trajectory.num_particles();
  for (size_t s = 0; s < trajectory.num_snapshots(); ++s) {
    const core::Snapshot& snap = trajectory.snapshots[s];
    std::fprintf(file.get(), "%zu\nframe %zu box %.17g %.17g %.17g\n", n, s,
                 trajectory.box[0], trajectory.box[1], trajectory.box[2]);
    for (size_t i = 0; i < n; ++i) {
      std::fprintf(file.get(), "%s %.17g %.17g %.17g\n", element.c_str(),
                   snap.axes[0][i], snap.axes[1][i], snap.axes[2][i]);
    }
  }
  if (std::fflush(file.get()) != 0) return Status::Internal("flush failed");
  return Status::OK();
}

Result<core::Trajectory> ReadXyzTrajectory(const std::string& path) {
  MDZ_ASSIGN_OR_RETURN(auto reader, TrajectoryReader::Open(path));
  if (reader->format() != TrajectoryFormat::kXyz) {
    return Status::Corruption("not an XYZ file: " + path);
  }
  return Collect(reader.get());
}

}  // namespace mdz::io
