#ifndef MDZ_IO_ARCHIVE_H_
#define MDZ_IO_ARCHIVE_H_

#include <array>
#include <string>

#include "core/mdz.h"
#include "util/status.h"

namespace mdz::io {

// On-disk container for a compressed trajectory: the three per-axis MDZ
// streams plus the metadata needed to reconstruct a core::Trajectory, sealed
// with an FNV-1a checksum so bit rot is reported as Corruption rather than
// silently decoded.
struct Archive {
  core::CompressedTrajectory data;
  std::string name;                       // dataset label (optional)
  std::array<double, 3> box = {0, 0, 0};  // periodic box (0 = non-periodic)
};

Status WriteArchive(const Archive& archive, const std::string& path);

Result<Archive> ReadArchive(const std::string& path);

// Convenience: decompress an archive back into a trajectory (restores name
// and box from the metadata).
Result<core::Trajectory> DecompressArchive(const Archive& archive);

}  // namespace mdz::io

#endif  // MDZ_IO_ARCHIVE_H_
