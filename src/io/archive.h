#ifndef MDZ_IO_ARCHIVE_H_
#define MDZ_IO_ARCHIVE_H_

#include <array>
#include <string>

#include "core/mdz.h"
#include "util/status.h"

namespace mdz::io {

// In-memory form of an on-disk archive: the three per-axis MDZ streams plus
// the metadata needed to reconstruct a core::Trajectory. Two container
// versions exist on disk (docs/FORMAT.md Section 2):
//
//   v1 — monolithic blob sealed by one whole-file FNV-1a checksum;
//   v2 — framed + indexed (src/archive/), integrity-checked per frame, the
//        format `src/archive/ArchiveReader` serves random access from.
struct Archive {
  core::CompressedTrajectory data;
  std::string name;                       // dataset label (optional)
  std::array<double, 3> box = {0, 0, 0};  // periodic box (0 = non-periodic)
};

// Writes the legacy v1 container (kept so `mdz repack` round-trip tests and
// old archives stay exercised).
Status WriteArchive(const Archive& archive, const std::string& path);

// Writes the framed v2 container (the default for new archives). The axis
// streams are stored frame-by-frame but byte-identically recoverable, so
// ReadArchive returns the same Archive for both versions of the same data.
Status WriteArchiveV2(const Archive& archive, const std::string& path);

// Opens either container version (sniffs magic + version byte). v1 archives
// are verified by their whole-file checksum; v2 archives by the footer index
// and every frame's own CRC.
Result<Archive> ReadArchive(const std::string& path);

// Convenience: decompress an archive back into a trajectory (restores name
// and box from the metadata).
Result<core::Trajectory> DecompressArchive(const Archive& archive);

}  // namespace mdz::io

#endif  // MDZ_IO_ARCHIVE_H_
