# Empty dependencies file for insitu_md_dump.
# This may be replaced when dependencies are built.
