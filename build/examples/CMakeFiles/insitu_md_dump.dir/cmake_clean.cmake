file(REMOVE_RECURSE
  "CMakeFiles/insitu_md_dump.dir/insitu_md_dump.cpp.o"
  "CMakeFiles/insitu_md_dump.dir/insitu_md_dump.cpp.o.d"
  "insitu_md_dump"
  "insitu_md_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_md_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
