# Empty dependencies file for adaptive_selection.
# This may be replaced when dependencies are built.
