file(REMOVE_RECURSE
  "CMakeFiles/random_access.dir/random_access.cpp.o"
  "CMakeFiles/random_access.dir/random_access.cpp.o.d"
  "random_access"
  "random_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
