# Empty dependencies file for mdz_cli.
# This may be replaced when dependencies are built.
