file(REMOVE_RECURSE
  "CMakeFiles/mdz_cli.dir/mdz_cli.cc.o"
  "CMakeFiles/mdz_cli.dir/mdz_cli.cc.o.d"
  "mdz"
  "mdz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
