# Empty compiler generated dependencies file for mdz_md.
# This may be replaced when dependencies are built.
