file(REMOVE_RECURSE
  "libmdz_md.a"
)
