file(REMOVE_RECURSE
  "CMakeFiles/mdz_md.dir/cell_list.cc.o"
  "CMakeFiles/mdz_md.dir/cell_list.cc.o.d"
  "CMakeFiles/mdz_md.dir/dump.cc.o"
  "CMakeFiles/mdz_md.dir/dump.cc.o.d"
  "CMakeFiles/mdz_md.dir/harmonic_crystal.cc.o"
  "CMakeFiles/mdz_md.dir/harmonic_crystal.cc.o.d"
  "CMakeFiles/mdz_md.dir/lattice.cc.o"
  "CMakeFiles/mdz_md.dir/lattice.cc.o.d"
  "CMakeFiles/mdz_md.dir/lj_simulation.cc.o"
  "CMakeFiles/mdz_md.dir/lj_simulation.cc.o.d"
  "libmdz_md.a"
  "libmdz_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
