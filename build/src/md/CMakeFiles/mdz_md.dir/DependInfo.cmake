
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/cell_list.cc" "src/md/CMakeFiles/mdz_md.dir/cell_list.cc.o" "gcc" "src/md/CMakeFiles/mdz_md.dir/cell_list.cc.o.d"
  "/root/repo/src/md/dump.cc" "src/md/CMakeFiles/mdz_md.dir/dump.cc.o" "gcc" "src/md/CMakeFiles/mdz_md.dir/dump.cc.o.d"
  "/root/repo/src/md/harmonic_crystal.cc" "src/md/CMakeFiles/mdz_md.dir/harmonic_crystal.cc.o" "gcc" "src/md/CMakeFiles/mdz_md.dir/harmonic_crystal.cc.o.d"
  "/root/repo/src/md/lattice.cc" "src/md/CMakeFiles/mdz_md.dir/lattice.cc.o" "gcc" "src/md/CMakeFiles/mdz_md.dir/lattice.cc.o.d"
  "/root/repo/src/md/lj_simulation.cc" "src/md/CMakeFiles/mdz_md.dir/lj_simulation.cc.o" "gcc" "src/md/CMakeFiles/mdz_md.dir/lj_simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/mdz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mdz_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
