file(REMOVE_RECURSE
  "libmdz_datagen.a"
)
