file(REMOVE_RECURSE
  "CMakeFiles/mdz_datagen.dir/generators.cc.o"
  "CMakeFiles/mdz_datagen.dir/generators.cc.o.d"
  "libmdz_datagen.a"
  "libmdz_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
