# Empty compiler generated dependencies file for mdz_datagen.
# This may be replaced when dependencies are built.
