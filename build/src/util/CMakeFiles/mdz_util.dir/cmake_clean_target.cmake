file(REMOVE_RECURSE
  "libmdz_util.a"
)
