file(REMOVE_RECURSE
  "CMakeFiles/mdz_util.dir/status.cc.o"
  "CMakeFiles/mdz_util.dir/status.cc.o.d"
  "libmdz_util.a"
  "libmdz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
