# Empty compiler generated dependencies file for mdz_util.
# This may be replaced when dependencies are built.
