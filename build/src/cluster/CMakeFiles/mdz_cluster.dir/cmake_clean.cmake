file(REMOVE_RECURSE
  "CMakeFiles/mdz_cluster.dir/kmeans1d.cc.o"
  "CMakeFiles/mdz_cluster.dir/kmeans1d.cc.o.d"
  "libmdz_cluster.a"
  "libmdz_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
