# Empty dependencies file for mdz_cluster.
# This may be replaced when dependencies are built.
