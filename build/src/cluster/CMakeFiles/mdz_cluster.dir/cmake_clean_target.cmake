file(REMOVE_RECURSE
  "libmdz_cluster.a"
)
