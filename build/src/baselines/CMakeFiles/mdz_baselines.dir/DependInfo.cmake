
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/asn.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/asn.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/asn.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/compressor_interface.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/compressor_interface.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/compressor_interface.cc.o.d"
  "/root/repo/src/baselines/hrtc.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/hrtc.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/hrtc.cc.o.d"
  "/root/repo/src/baselines/lfzip.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/lfzip.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/lfzip.cc.o.d"
  "/root/repo/src/baselines/mdb.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/mdb.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/mdb.cc.o.d"
  "/root/repo/src/baselines/sz2.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/sz2.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/sz2.cc.o.d"
  "/root/repo/src/baselines/sz3_interp.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/sz3_interp.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/sz3_interp.cc.o.d"
  "/root/repo/src/baselines/tng.cc" "src/baselines/CMakeFiles/mdz_baselines.dir/tng.cc.o" "gcc" "src/baselines/CMakeFiles/mdz_baselines.dir/tng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/mdz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mdz_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
