# Empty compiler generated dependencies file for mdz_baselines.
# This may be replaced when dependencies are built.
