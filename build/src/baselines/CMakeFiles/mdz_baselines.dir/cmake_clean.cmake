file(REMOVE_RECURSE
  "CMakeFiles/mdz_baselines.dir/asn.cc.o"
  "CMakeFiles/mdz_baselines.dir/asn.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/common.cc.o"
  "CMakeFiles/mdz_baselines.dir/common.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/compressor_interface.cc.o"
  "CMakeFiles/mdz_baselines.dir/compressor_interface.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/hrtc.cc.o"
  "CMakeFiles/mdz_baselines.dir/hrtc.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/lfzip.cc.o"
  "CMakeFiles/mdz_baselines.dir/lfzip.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/mdb.cc.o"
  "CMakeFiles/mdz_baselines.dir/mdb.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/sz2.cc.o"
  "CMakeFiles/mdz_baselines.dir/sz2.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/sz3_interp.cc.o"
  "CMakeFiles/mdz_baselines.dir/sz3_interp.cc.o.d"
  "CMakeFiles/mdz_baselines.dir/tng.cc.o"
  "CMakeFiles/mdz_baselines.dir/tng.cc.o.d"
  "libmdz_baselines.a"
  "libmdz_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
