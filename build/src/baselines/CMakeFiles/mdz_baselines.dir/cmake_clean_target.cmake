file(REMOVE_RECURSE
  "libmdz_baselines.a"
)
