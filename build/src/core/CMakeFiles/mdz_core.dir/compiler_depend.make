# Empty compiler generated dependencies file for mdz_core.
# This may be replaced when dependencies are built.
