
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_codec.cc" "src/core/CMakeFiles/mdz_core.dir/block_codec.cc.o" "gcc" "src/core/CMakeFiles/mdz_core.dir/block_codec.cc.o.d"
  "/root/repo/src/core/mdz.cc" "src/core/CMakeFiles/mdz_core.dir/mdz.cc.o" "gcc" "src/core/CMakeFiles/mdz_core.dir/mdz.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/mdz_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/mdz_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/pointwise_relative.cc" "src/core/CMakeFiles/mdz_core.dir/pointwise_relative.cc.o" "gcc" "src/core/CMakeFiles/mdz_core.dir/pointwise_relative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/mdz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mdz_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
