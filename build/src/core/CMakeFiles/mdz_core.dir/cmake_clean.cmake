file(REMOVE_RECURSE
  "CMakeFiles/mdz_core.dir/block_codec.cc.o"
  "CMakeFiles/mdz_core.dir/block_codec.cc.o.d"
  "CMakeFiles/mdz_core.dir/mdz.cc.o"
  "CMakeFiles/mdz_core.dir/mdz.cc.o.d"
  "CMakeFiles/mdz_core.dir/parallel.cc.o"
  "CMakeFiles/mdz_core.dir/parallel.cc.o.d"
  "CMakeFiles/mdz_core.dir/pointwise_relative.cc.o"
  "CMakeFiles/mdz_core.dir/pointwise_relative.cc.o.d"
  "libmdz_core.a"
  "libmdz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
