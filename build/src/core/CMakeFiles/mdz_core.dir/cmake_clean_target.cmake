file(REMOVE_RECURSE
  "libmdz_core.a"
)
