file(REMOVE_RECURSE
  "libmdz_io.a"
)
