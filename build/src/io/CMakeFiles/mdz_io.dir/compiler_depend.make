# Empty compiler generated dependencies file for mdz_io.
# This may be replaced when dependencies are built.
