file(REMOVE_RECURSE
  "CMakeFiles/mdz_io.dir/archive.cc.o"
  "CMakeFiles/mdz_io.dir/archive.cc.o.d"
  "CMakeFiles/mdz_io.dir/trajectory_io.cc.o"
  "CMakeFiles/mdz_io.dir/trajectory_io.cc.o.d"
  "libmdz_io.a"
  "libmdz_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
