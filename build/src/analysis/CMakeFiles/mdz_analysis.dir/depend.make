# Empty dependencies file for mdz_analysis.
# This may be replaced when dependencies are built.
