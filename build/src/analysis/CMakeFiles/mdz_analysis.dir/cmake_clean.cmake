file(REMOVE_RECURSE
  "CMakeFiles/mdz_analysis.dir/characterize.cc.o"
  "CMakeFiles/mdz_analysis.dir/characterize.cc.o.d"
  "CMakeFiles/mdz_analysis.dir/dynamics.cc.o"
  "CMakeFiles/mdz_analysis.dir/dynamics.cc.o.d"
  "CMakeFiles/mdz_analysis.dir/metrics.cc.o"
  "CMakeFiles/mdz_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/mdz_analysis.dir/rdf.cc.o"
  "CMakeFiles/mdz_analysis.dir/rdf.cc.o.d"
  "libmdz_analysis.a"
  "libmdz_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
