file(REMOVE_RECURSE
  "libmdz_analysis.a"
)
