file(REMOVE_RECURSE
  "CMakeFiles/mdz_codec.dir/fpc.cc.o"
  "CMakeFiles/mdz_codec.dir/fpc.cc.o.d"
  "CMakeFiles/mdz_codec.dir/fpzip_like.cc.o"
  "CMakeFiles/mdz_codec.dir/fpzip_like.cc.o.d"
  "CMakeFiles/mdz_codec.dir/huffman.cc.o"
  "CMakeFiles/mdz_codec.dir/huffman.cc.o.d"
  "CMakeFiles/mdz_codec.dir/lossless.cc.o"
  "CMakeFiles/mdz_codec.dir/lossless.cc.o.d"
  "CMakeFiles/mdz_codec.dir/lz.cc.o"
  "CMakeFiles/mdz_codec.dir/lz.cc.o.d"
  "CMakeFiles/mdz_codec.dir/range_coder.cc.o"
  "CMakeFiles/mdz_codec.dir/range_coder.cc.o.d"
  "CMakeFiles/mdz_codec.dir/zfp_like.cc.o"
  "CMakeFiles/mdz_codec.dir/zfp_like.cc.o.d"
  "libmdz_codec.a"
  "libmdz_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdz_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
