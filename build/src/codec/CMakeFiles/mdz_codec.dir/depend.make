# Empty dependencies file for mdz_codec.
# This may be replaced when dependencies are built.
