
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/fpc.cc" "src/codec/CMakeFiles/mdz_codec.dir/fpc.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/fpc.cc.o.d"
  "/root/repo/src/codec/fpzip_like.cc" "src/codec/CMakeFiles/mdz_codec.dir/fpzip_like.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/fpzip_like.cc.o.d"
  "/root/repo/src/codec/huffman.cc" "src/codec/CMakeFiles/mdz_codec.dir/huffman.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/huffman.cc.o.d"
  "/root/repo/src/codec/lossless.cc" "src/codec/CMakeFiles/mdz_codec.dir/lossless.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/lossless.cc.o.d"
  "/root/repo/src/codec/lz.cc" "src/codec/CMakeFiles/mdz_codec.dir/lz.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/lz.cc.o.d"
  "/root/repo/src/codec/range_coder.cc" "src/codec/CMakeFiles/mdz_codec.dir/range_coder.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/range_coder.cc.o.d"
  "/root/repo/src/codec/zfp_like.cc" "src/codec/CMakeFiles/mdz_codec.dir/zfp_like.cc.o" "gcc" "src/codec/CMakeFiles/mdz_codec.dir/zfp_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
