file(REMOVE_RECURSE
  "libmdz_codec.a"
)
