# Empty compiler generated dependencies file for mdz_tests.
# This may be replaced when dependencies are built.
