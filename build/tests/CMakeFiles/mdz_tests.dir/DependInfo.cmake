
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/mdz_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/mdz_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/block_codec_test.cc" "tests/CMakeFiles/mdz_tests.dir/block_codec_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/block_codec_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/mdz_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/dynamics_test.cc" "tests/CMakeFiles/mdz_tests.dir/dynamics_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/dynamics_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/mdz_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/float_codec_test.cc" "tests/CMakeFiles/mdz_tests.dir/float_codec_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/float_codec_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/mdz_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/huffman_test.cc" "tests/CMakeFiles/mdz_tests.dir/huffman_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/huffman_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mdz_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/mdz_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/mdz_tests.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/lz_test.cc" "tests/CMakeFiles/mdz_tests.dir/lz_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/lz_test.cc.o.d"
  "/root/repo/tests/md_test.cc" "tests/CMakeFiles/mdz_tests.dir/md_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/md_test.cc.o.d"
  "/root/repo/tests/mdz_test.cc" "tests/CMakeFiles/mdz_tests.dir/mdz_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/mdz_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/mdz_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/quantizer_test.cc" "tests/CMakeFiles/mdz_tests.dir/quantizer_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/quantizer_test.cc.o.d"
  "/root/repo/tests/range_coder_test.cc" "tests/CMakeFiles/mdz_tests.dir/range_coder_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/range_coder_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/mdz_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/mdz_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mdz_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mdz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mdz_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mdz_io.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/mdz_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mdz_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/mdz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
