# Empty dependencies file for table2_prediction_error.
# This may be replaced when dependencies are built.
