file(REMOVE_RECURSE
  "CMakeFiles/table2_prediction_error.dir/table2_prediction_error.cc.o"
  "CMakeFiles/table2_prediction_error.dir/table2_prediction_error.cc.o.d"
  "table2_prediction_error"
  "table2_prediction_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_prediction_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
