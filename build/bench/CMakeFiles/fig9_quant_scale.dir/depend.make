# Empty dependencies file for fig9_quant_scale.
# This may be replaced when dependencies are built.
