file(REMOVE_RECURSE
  "CMakeFiles/fig9_quant_scale.dir/fig9_quant_scale.cc.o"
  "CMakeFiles/fig9_quant_scale.dir/fig9_quant_scale.cc.o.d"
  "fig9_quant_scale"
  "fig9_quant_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_quant_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
