# Empty dependencies file for fig12_compressor_cr.
# This may be replaced when dependencies are built.
