file(REMOVE_RECURSE
  "CMakeFiles/fig12_compressor_cr.dir/fig12_compressor_cr.cc.o"
  "CMakeFiles/fig12_compressor_cr.dir/fig12_compressor_cr.cc.o.d"
  "fig12_compressor_cr"
  "fig12_compressor_cr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compressor_cr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
