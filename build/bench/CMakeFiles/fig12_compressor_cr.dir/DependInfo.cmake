
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_compressor_cr.cc" "bench/CMakeFiles/fig12_compressor_cr.dir/fig12_compressor_cr.cc.o" "gcc" "bench/CMakeFiles/fig12_compressor_cr.dir/fig12_compressor_cr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mdz_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mdz_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mdz_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/mdz_md.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mdz_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/mdz_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
