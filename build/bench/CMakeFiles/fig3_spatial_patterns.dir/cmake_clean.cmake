file(REMOVE_RECURSE
  "CMakeFiles/fig3_spatial_patterns.dir/fig3_spatial_patterns.cc.o"
  "CMakeFiles/fig3_spatial_patterns.dir/fig3_spatial_patterns.cc.o.d"
  "fig3_spatial_patterns"
  "fig3_spatial_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_spatial_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
