# Empty dependencies file for fig3_spatial_patterns.
# This may be replaced when dependencies are built.
