# Empty compiler generated dependencies file for fig11_adp_vs_modes.
# This may be replaced when dependencies are built.
