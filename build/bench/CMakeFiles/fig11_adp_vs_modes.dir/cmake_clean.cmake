file(REMOVE_RECURSE
  "CMakeFiles/fig11_adp_vs_modes.dir/fig11_adp_vs_modes.cc.o"
  "CMakeFiles/fig11_adp_vs_modes.dir/fig11_adp_vs_modes.cc.o.d"
  "fig11_adp_vs_modes"
  "fig11_adp_vs_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adp_vs_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
