file(REMOVE_RECURSE
  "CMakeFiles/fig10_adaptive_tracking.dir/fig10_adaptive_tracking.cc.o"
  "CMakeFiles/fig10_adaptive_tracking.dir/fig10_adaptive_tracking.cc.o.d"
  "fig10_adaptive_tracking"
  "fig10_adaptive_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_adaptive_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
