# Empty compiler generated dependencies file for fig10_adaptive_tracking.
# This may be replaced when dependencies are built.
