# Empty dependencies file for table7_md_overhead.
# This may be replaced when dependencies are built.
