file(REMOVE_RECURSE
  "CMakeFiles/table7_md_overhead.dir/table7_md_overhead.cc.o"
  "CMakeFiles/table7_md_overhead.dir/table7_md_overhead.cc.o.d"
  "table7_md_overhead"
  "table7_md_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_md_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
