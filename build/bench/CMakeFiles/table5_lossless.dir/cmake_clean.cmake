file(REMOVE_RECURSE
  "CMakeFiles/table5_lossless.dir/table5_lossless.cc.o"
  "CMakeFiles/table5_lossless.dir/table5_lossless.cc.o.d"
  "table5_lossless"
  "table5_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
