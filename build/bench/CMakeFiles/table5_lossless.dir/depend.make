# Empty dependencies file for table5_lossless.
# This may be replaced when dependencies are built.
