file(REMOVE_RECURSE
  "CMakeFiles/fig5_temporal.dir/fig5_temporal.cc.o"
  "CMakeFiles/fig5_temporal.dir/fig5_temporal.cc.o.d"
  "fig5_temporal"
  "fig5_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
