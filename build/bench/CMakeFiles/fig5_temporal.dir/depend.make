# Empty dependencies file for fig5_temporal.
# This may be replaced when dependencies are built.
