file(REMOVE_RECURSE
  "CMakeFiles/ext_sz3_comparison.dir/ext_sz3_comparison.cc.o"
  "CMakeFiles/ext_sz3_comparison.dir/ext_sz3_comparison.cc.o.d"
  "ext_sz3_comparison"
  "ext_sz3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sz3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
