# Empty compiler generated dependencies file for fig13_rate_distortion.
# This may be replaced when dependencies are built.
