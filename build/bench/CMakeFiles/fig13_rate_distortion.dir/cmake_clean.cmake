file(REMOVE_RECURSE
  "CMakeFiles/fig13_rate_distortion.dir/fig13_rate_distortion.cc.o"
  "CMakeFiles/fig13_rate_distortion.dir/fig13_rate_distortion.cc.o.d"
  "fig13_rate_distortion"
  "fig13_rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
