# Empty compiler generated dependencies file for fig16_hacc.
# This may be replaced when dependencies are built.
