file(REMOVE_RECURSE
  "CMakeFiles/fig16_hacc.dir/fig16_hacc.cc.o"
  "CMakeFiles/fig16_hacc.dir/fig16_hacc.cc.o.d"
  "fig16_hacc"
  "fig16_hacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
