file(REMOVE_RECURSE
  "CMakeFiles/table6_error_metrics.dir/table6_error_metrics.cc.o"
  "CMakeFiles/table6_error_metrics.dir/table6_error_metrics.cc.o.d"
  "table6_error_metrics"
  "table6_error_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_error_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
