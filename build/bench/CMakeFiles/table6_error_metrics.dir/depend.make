# Empty dependencies file for table6_error_metrics.
# This may be replaced when dependencies are built.
