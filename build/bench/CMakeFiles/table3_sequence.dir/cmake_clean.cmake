file(REMOVE_RECURSE
  "CMakeFiles/table3_sequence.dir/table3_sequence.cc.o"
  "CMakeFiles/table3_sequence.dir/table3_sequence.cc.o.d"
  "table3_sequence"
  "table3_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
