# Empty dependencies file for table3_sequence.
# This may be replaced when dependencies are built.
