# Empty compiler generated dependencies file for fig14_rdf.
# This may be replaced when dependencies are built.
