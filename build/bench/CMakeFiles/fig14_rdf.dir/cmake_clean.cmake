file(REMOVE_RECURSE
  "CMakeFiles/fig14_rdf.dir/fig14_rdf.cc.o"
  "CMakeFiles/fig14_rdf.dir/fig14_rdf.cc.o.d"
  "fig14_rdf"
  "fig14_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
