file(REMOVE_RECURSE
  "CMakeFiles/fig4_value_distribution.dir/fig4_value_distribution.cc.o"
  "CMakeFiles/fig4_value_distribution.dir/fig4_value_distribution.cc.o.d"
  "fig4_value_distribution"
  "fig4_value_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_value_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
