file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptation.dir/ablation_adaptation.cc.o"
  "CMakeFiles/ablation_adaptation.dir/ablation_adaptation.cc.o.d"
  "ablation_adaptation"
  "ablation_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
