file(REMOVE_RECURSE
  "CMakeFiles/table4_sz_modes.dir/table4_sz_modes.cc.o"
  "CMakeFiles/table4_sz_modes.dir/table4_sz_modes.cc.o.d"
  "table4_sz_modes"
  "table4_sz_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sz_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
