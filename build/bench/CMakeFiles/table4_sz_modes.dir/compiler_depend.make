# Empty compiler generated dependencies file for table4_sz_modes.
# This may be replaced when dependencies are built.
