# Empty dependencies file for fig8_similarity.
# This may be replaced when dependencies are built.
