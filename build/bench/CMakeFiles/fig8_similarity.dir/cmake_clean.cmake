file(REMOVE_RECURSE
  "CMakeFiles/fig8_similarity.dir/fig8_similarity.cc.o"
  "CMakeFiles/fig8_similarity.dir/fig8_similarity.cc.o.d"
  "fig8_similarity"
  "fig8_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
