#!/bin/sh
# Validates the telemetry artifacts produced by a `mdz compress --metrics-json
# M --metrics-prom P --trace T` run, using only POSIX shell + grep/awk (no
# JSON tooling in the image). Exits non-zero with a message on the first
# violated invariant.
#
#   tools/check_telemetry.sh <metrics.json> <metrics.prom> <trace.jsonl>
set -eu

if [ $# -ne 3 ]; then
  echo "usage: $0 <metrics.json> <metrics.prom> <trace.jsonl>" >&2
  exit 2
fi
JSON="$1"
PROM="$2"
TRACE="$3"

fail() {
  echo "check_telemetry: $1" >&2
  exit 1
}

# --- JSON snapshot ----------------------------------------------------------
test -s "$JSON" || fail "metrics JSON missing or empty: $JSON"
grep -q '^{"schema":"mdz.metrics.v1",' "$JSON" || fail "bad JSON schema tag"
for key in '"counters":{' '"gauges":{' '"histograms":{'; do
  grep -q "$key" "$JSON" || fail "JSON missing section $key"
done
for counter in compress/blocks compress/bytes_out compress/bytes_raw \
    compress/snapshots_in compress/streams; do
  grep -q "\"$counter\":[0-9]" "$JSON" || fail "JSON missing $counter"
done
for span in span/flush_buffer span/flush_buffer/encode_block; do
  grep -q "\"$span\":{\"count\":[0-9]" "$JSON" || fail "JSON missing $span"
done
grep -q '"le":"+Inf"' "$JSON" || fail "JSON histograms missing +Inf bucket"

# compress/blocks must equal the sum of the per-method block counters.
awk '
  {
    for (i = 1; i <= NF; ++i) {
      if (split($i, kv, ":") == 2) {
        gsub(/[\"{}]/, "", kv[1])
        if (kv[1] == "compress/blocks") total = kv[2] + 0
        if (kv[1] ~ /^compress\/blocks_/) sum += kv[2] + 0
      }
    }
  }
  END {
    if (total == 0) { print "no blocks recorded"; exit 1 }
    if (sum != total) {
      print "per-method counters sum to " sum ", expected " total; exit 1
    }
  }
' RS=',' "$JSON" || fail "block counter invariant violated in $JSON"

# --- Prometheus exposition --------------------------------------------------
test -s "$PROM" || fail "Prometheus file missing or empty: $PROM"
grep -q '^# TYPE mdz_compress_blocks counter$' "$PROM" \
  || fail "prom missing mdz_compress_blocks TYPE line"
grep -Eq '^mdz_compress_blocks [0-9]+$' "$PROM" \
  || fail "prom missing mdz_compress_blocks sample"
grep -Eq '^mdz_span_flush_buffer_bucket\{le="\+Inf"\} [0-9]+$' "$PROM" \
  || fail "prom missing flush_buffer +Inf bucket"
# Histogram sanity: every _count sample has a matching +Inf bucket count.
awk '
  /_bucket\{le="\+Inf"\}/ { inf[substr($1, 1, index($1, "_bucket") - 1)] = $2 }
  /_count / { sub(/_count$/, "", $1); cnt[$1] = $2 }
  END {
    for (m in cnt) {
      if (!(m in inf)) { print "no +Inf bucket for " m; exit 1 }
      if (inf[m] != cnt[m]) {
        print m ": +Inf bucket " inf[m] " != count " cnt[m]; exit 1
      }
    }
  }
' "$PROM" || fail "prom histogram invariant violated in $PROM"

# --- Trace JSONL ------------------------------------------------------------
test -s "$TRACE" || fail "trace file missing or empty: $TRACE"
lines=$(wc -l < "$TRACE")
well_formed=$(grep -c \
  '^{"axis":-*[0-9]*,"block":[0-9]*,"method":"[A-Z]*","snapshots":[0-9]*,"bytes":[0-9]*,"escapes":[0-9]*,"entropy_bits":[-0-9.e+]*,"adapted":\(true\|false\),"trial_vq":[0-9]*,"trial_vqt":[0-9]*,"trial_mt":[0-9]*,"trial_ti":[0-9]*}$' \
  "$TRACE") || true
test "$lines" = "$well_formed" \
  || fail "$((lines - well_formed)) malformed trace lines in $TRACE"

# The traced block count must match the JSON's compress/blocks counter.
json_blocks=$(tr ',' '\n' < "$JSON" | grep '"compress/blocks"' \
  | tr -cd '0-9')
test "$lines" = "$json_blocks" \
  || fail "trace has $lines events, metrics counted $json_blocks blocks"

echo "check_telemetry OK: $lines blocks traced, invariants hold"
