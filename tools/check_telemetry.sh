#!/bin/sh
# Validates the telemetry artifacts produced by a `mdz compress --metrics-json
# M --metrics-prom P --trace T` run, using only POSIX shell + grep/awk (no
# JSON tooling in the image). Exits non-zero with a message on the first
# violated invariant.
#
#   tools/check_telemetry.sh <metrics.json> <metrics.prom> <trace.jsonl> \
#       [quality.json] [profile.json]
#
# The optional fourth argument is an `mdz audit --json` report from a clean
# round-trip; it is checked for the mdz.quality.v1 invariants (verdict ok,
# max error within the bound, histogram counts summing to the sample count).
# The optional fifth argument is a `--profile-out *.json` report; it is
# checked for the mdz.profile.v1 invariants, and its presence additionally
# requires the profiler/* counter families in the Prometheus exposition.
# Pass "" for an argument to skip it.
set -eu

if [ $# -lt 3 ] || [ $# -gt 5 ]; then
  echo "usage: $0 <metrics.json> <metrics.prom> <trace.jsonl>" \
       "[quality.json] [profile.json]" >&2
  exit 2
fi
JSON="$1"
PROM="$2"
TRACE="$3"
QUALITY="${4:-}"
PROFILE="${5:-}"

fail() {
  echo "check_telemetry: $1" >&2
  exit 1
}

# --- JSON snapshot ----------------------------------------------------------
test -s "$JSON" || fail "metrics JSON missing or empty: $JSON"
grep -q '^{"schema":"mdz.metrics.v1",' "$JSON" || fail "bad JSON schema tag"
for key in '"counters":{' '"gauges":{' '"histograms":{'; do
  grep -q "$key" "$JSON" || fail "JSON missing section $key"
done
for counter in compress/blocks compress/bytes_out compress/bytes_raw \
    compress/snapshots_in compress/streams; do
  grep -q "\"$counter\":[0-9]" "$JSON" || fail "JSON missing $counter"
done
for span in span/flush_buffer span/flush_buffer/encode_block; do
  grep -q "\"$span\":{\"count\":[0-9]" "$JSON" || fail "JSON missing $span"
done
grep -q '"le":"+Inf"' "$JSON" || fail "JSON histograms missing +Inf bucket"

# compress/blocks must equal the sum of the per-method block counters.
awk '
  {
    for (i = 1; i <= NF; ++i) {
      if (split($i, kv, ":") == 2) {
        gsub(/[\"{}]/, "", kv[1])
        if (kv[1] == "compress/blocks") total = kv[2] + 0
        if (kv[1] ~ /^compress\/blocks_/) sum += kv[2] + 0
      }
    }
  }
  END {
    if (total == 0) { print "no blocks recorded"; exit 1 }
    if (sum != total) {
      print "per-method counters sum to " sum ", expected " total; exit 1
    }
  }
' RS=',' "$JSON" || fail "block counter invariant violated in $JSON"

# --- Prometheus exposition --------------------------------------------------
test -s "$PROM" || fail "Prometheus file missing or empty: $PROM"
grep -q '^# TYPE mdz_compress_blocks counter$' "$PROM" \
  || fail "prom missing mdz_compress_blocks TYPE line"
grep -Eq '^mdz_compress_blocks [0-9]+$' "$PROM" \
  || fail "prom missing mdz_compress_blocks sample"
grep -Eq '^mdz_span_flush_buffer_bucket\{le="\+Inf"\} [0-9]+$' "$PROM" \
  || fail "prom missing flush_buffer +Inf bucket"
# Histogram sanity: every _count sample has a matching +Inf bucket count.
awk '
  /_bucket\{le="\+Inf"\}/ { inf[substr($1, 1, index($1, "_bucket") - 1)] = $2 }
  /_count / { sub(/_count$/, "", $1); cnt[$1] = $2 }
  END {
    for (m in cnt) {
      if (!(m in inf)) { print "no +Inf bucket for " m; exit 1 }
      if (inf[m] != cnt[m]) {
        print m ": +Inf bucket " inf[m] " != count " cnt[m]; exit 1
      }
    }
  }
' "$PROM" || fail "prom histogram invariant violated in $PROM"

# Exposition lint: every sample must be preceded by # HELP and # TYPE lines
# for its metric family (histogram samples resolve via their family name).
awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { type[$3] = 1; next }
  /^[A-Za-z_:]/ {
    m = $1
    sub(/\{.*/, "", m)
    base = m
    if (!(base in type)) sub(/_(bucket|sum|count)$/, "", base)
    if (!(base in type)) { print "no # TYPE for " m; exit 1 }
    if (!(base in help)) { print "no # HELP for " m; exit 1 }
  }
' "$PROM" || fail "prom HELP/TYPE lint failed in $PROM"
grep -q '^mdz_build_info{git_sha="' "$PROM" \
  || fail "prom missing mdz_build_info gauge"

# Escaping lint: exposition text must never leak raw control characters or
# malformed escapes.
#  * No line may contain a literal tab or carriage return.
#  * Label values may use only \\, \" and \n escapes; a trailing lone
#    backslash or a bare inner quote would corrupt the sample line.
#  * HELP text must not contain an unescaped backslash (only \\ and \n are
#    legal there).
grep -q "$(printf '\t')" "$PROM" && fail "prom contains a literal tab" || true
grep -q "$(printf '\r')" "$PROM" && fail "prom contains a carriage return" \
  || true
awk '
  /^# HELP / {
    text = substr($0, index($0, $4))
    # Strip legal escapes; any backslash left is malformed.
    gsub(/\\\\/, "", text)
    gsub(/\\n/, "", text)
    if (text ~ /\\/) { print "malformed HELP escape: " $0; exit 1 }
    next
  }
  /^[A-Za-z_:].*\{/ {
    # Label section between the first "{" and the last "}".
    labels = substr($0, index($0, "{") + 1)
    sub(/\}[^}]*$/, "", labels)
    gsub(/\\\\/, "", labels)
    gsub(/\\"/, "", labels)
    gsub(/\\n/, "", labels)
    if (labels ~ /\\/) { print "malformed label escape: " $0; exit 1 }
  }
' "$PROM" || fail "prom escaping lint failed in $PROM"

# --- Trace JSONL ------------------------------------------------------------
test -s "$TRACE" || fail "trace file missing or empty: $TRACE"
lines=$(wc -l < "$TRACE")
well_formed=$(grep -c \
  '^{"axis":-*[0-9]*,"block":[0-9]*,"method":"[A-Z]*","snapshots":[0-9]*,"bytes":[0-9]*,"escapes":[0-9]*,"entropy_bits":[-0-9.e+]*,"adapted":\(true\|false\),"trial_vq":[0-9]*,"trial_vqt":[0-9]*,"trial_mt":[0-9]*,"trial_ti":[0-9]*}$' \
  "$TRACE") || true
test "$lines" = "$well_formed" \
  || fail "$((lines - well_formed)) malformed trace lines in $TRACE"

# The traced block count must match the JSON's compress/blocks counter.
json_blocks=$(tr ',' '\n' < "$JSON" | grep '"compress/blocks"' \
  | tr -cd '0-9')
test "$lines" = "$json_blocks" \
  || fail "trace has $lines events, metrics counted $json_blocks blocks"

# --- Quality report (optional) ----------------------------------------------
if [ -n "$QUALITY" ]; then
  test -s "$QUALITY" || fail "quality report missing or empty: $QUALITY"
  grep -q '^{"schema":"mdz.quality.v1",' "$QUALITY" \
    || fail "bad quality schema tag in $QUALITY"
  grep -q '"ok":true' "$QUALITY" \
    || fail "quality report verdict is not ok in $QUALITY"
  grep -q '"build":{"git_sha":"' "$QUALITY" \
    || fail "quality report missing build provenance"
  # Per-field invariants: max_err within the bound, zero violations, and the
  # error histogram counts summing to the field sample count.
  awk '
    function num(seg, key,   s) {
      if (!match(seg, key "[-+0-9.eE]+")) return "missing"
      s = substr(seg, RSTART + length(key), RLENGTH - length(key))
      return s + 0
    }
    {
      n = split($0, parts, /\{"axis":/)
      if (n < 2) { print "no fields in quality report"; exit 1 }
      for (i = 2; i <= n; ++i) {
        seg = parts[i]
        bound = num(seg, "\"bound\":")
        max_err = num(seg, "\"max_err\":")
        count = num(seg, "\"count\":")
        violations = num(seg, "\"violations\":")
        if (bound == "missing" || max_err == "missing" || \
            count == "missing" || violations == "missing") {
          print "field " i - 1 " missing a stats key"; exit 1
        }
        if (max_err > bound) {
          print "field " i - 1 ": max_err " max_err " exceeds bound " bound
          exit 1
        }
        if (violations != 0) {
          print "field " i - 1 ": " violations " violations in an ok report"
          exit 1
        }
        if (!match(seg, /"counts":\[[0-9,]*\]/)) {
          print "field " i - 1 ": no histogram counts"; exit 1
        }
        hist = substr(seg, RSTART + 10, RLENGTH - 11)
        hn = split(hist, hc, ",")
        sum = 0
        for (j = 1; j <= hn; ++j) sum += hc[j] + 0
        if (sum != count) {
          print "field " i - 1 ": histogram sums to " sum ", count is " count
          exit 1
        }
      }
    }
  ' "$QUALITY" || fail "quality invariant violated in $QUALITY"
fi

# --- Profile report (optional) ----------------------------------------------
if [ -n "$PROFILE" ]; then
  test -s "$PROFILE" || fail "profile report missing or empty: $PROFILE"
  grep -q '^{"schema":"mdz.profile.v1",' "$PROFILE" \
    || fail "bad profile schema tag in $PROFILE"
  grep -q '"build":{"git_sha":"' "$PROFILE" \
    || fail "profile report missing build provenance"
  for key in '"hz":' '"duration_seconds":' '"samples":' '"dropped":' \
      '"signal_overruns":' '"span_attributed":' '"functions":\[' \
      '"spans":\['; do
    grep -q "$key" "$PROFILE" || fail "profile report missing $key"
  done
  # Function entries carry symbolized names with self <= total.
  awk '
    {
      if (!match($0, /"functions":\[/)) { print "no functions array"; exit 1 }
      body = substr($0, RSTART + RLENGTH)
      sub(/\],"spans":.*/, "", body)
      n = split(body, entries, /\},\{/)
      for (i = 1; i <= n; ++i) {
        seg = entries[i]
        if (seg == "") continue
        if (!match(seg, /"self":[0-9]+/)) { print "entry missing self"; exit 1 }
        self = substr(seg, RSTART + 7, RLENGTH - 7) + 0
        if (!match(seg, /"total":[0-9]+/)) { print "entry missing total"; exit 1 }
        total = substr(seg, RSTART + 8, RLENGTH - 8) + 0
        if (self > total) {
          print "function self " self " exceeds total " total; exit 1
        }
      }
    }
  ' "$PROFILE" || fail "profile invariant violated in $PROFILE"
  # A profiled run must have synced its tallies into the registry families.
  for family in mdz_profiler_samples mdz_profiler_drops \
      mdz_profiler_signal_overruns; do
    grep -q "^# TYPE ${family} counter\$" "$PROM" \
      || fail "prom missing ${family} TYPE line (profiled run)"
    grep -Eq "^${family} [0-9]+\$" "$PROM" \
      || fail "prom missing ${family} sample"
  done
fi

echo "check_telemetry OK: $lines blocks traced, invariants hold"
