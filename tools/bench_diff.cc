// bench_diff: compare two mdz.bench.v1 reports (or directories of them) and
// fail on throughput / compression-ratio regressions.
//
//   bench_diff <baseline> <current> [options]
//
// <baseline> and <current> are either single BENCH_*.json files or
// directories; for directories, reports are matched by file name and only
// the intersection is compared. Metric direction comes from the unit:
// "MB/s" (throughput) and "x" (compression ratio) are higher-is-better and
// gated; every other unit is informational and only printed.
//
// Options:
//   --threshold-throughput PCT   allowed MB/s drop, percent (default 10)
//   --threshold-ratio PCT        allowed ratio drop, percent (default 5)
//   --ignore-unit UNIT           skip gating for UNIT (repeatable)
//   --quiet                      only print regressions and the verdict
//
// Exit codes: 0 no regression, 1 regression found, 2 usage error,
// 3 I/O or parse error.

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough for the mdz.bench.v1 schema this repo emits
// (objects, arrays, strings, numbers, booleans, null).

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse(std::string* error) {
    auto value = ParseValue();
    SkipSpace();
    if (!value || pos_ != text_.size()) {
      if (error) {
        *error = "JSON parse error at byte " + std::to_string(pos_);
      }
      return nullptr;
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return nullptr;
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (!ConsumeWord("null")) return nullptr;
      return std::make_shared<JsonValue>();
    }
    return ParseNumber();
  }

  std::shared_ptr<JsonValue> ParseObject() {
    if (!Consume('{')) return nullptr;
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return value;
    while (true) {
      auto key = ParseString();
      if (!key || !Consume(':')) return nullptr;
      auto member = ParseValue();
      if (!member) return nullptr;
      value->object[key->string] = member;
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> ParseArray() {
    if (!Consume('[')) return nullptr;
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return value;
    while (true) {
      auto element = ParseValue();
      if (!element) return nullptr;
      value->array.push_back(element);
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> ParseString() {
    if (!Consume('"')) return nullptr;
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c == '\\') {
        if (pos_ >= text_.size()) return nullptr;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': value->string += '"'; break;
          case '\\': value->string += '\\'; break;
          case '/': value->string += '/'; break;
          case 'b': value->string += '\b'; break;
          case 'f': value->string += '\f'; break;
          case 'n': value->string += '\n'; break;
          case 'r': value->string += '\r'; break;
          case 't': value->string += '\t'; break;
          case 'u': {
            // The schema only escapes control characters; decode the BMP
            // code point as a single byte when it fits, '?' otherwise.
            if (pos_ + 4 > text_.size()) return nullptr;
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            value->string += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return nullptr;
        }
      } else {
        value->string += c;
      }
    }
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseBool() {
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kBool;
    if (ConsumeWord("true")) {
      value->boolean = true;
      return value;
    }
    if (ConsumeWord("false")) return value;
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return nullptr;
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kNumber;
    try {
      value->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return nullptr;
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Report model.

struct Metric {
  double value = 0.0;
  std::string unit;
  bool has_value = false;
};

struct Report {
  std::string bench;
  std::string build_flags;
  std::string simd;  // runtime SIMD variant ("scalar", "avx2", ...); may be
                     // empty for reports that predate the field
  std::map<std::string, Metric> metrics;
};

std::optional<Report> LoadReport(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonParser parser(text);
  auto root = parser.Parse(error);
  if (!root) {
    *error = path + ": " + *error;
    return std::nullopt;
  }
  if (root->kind != JsonValue::Kind::kObject) {
    *error = path + ": top level is not an object";
    return std::nullopt;
  }
  auto schema = root->object.find("schema");
  if (schema == root->object.end() ||
      schema->second->string != "mdz.bench.v1") {
    *error = path + ": not an mdz.bench.v1 report";
    return std::nullopt;
  }

  Report report;
  if (auto it = root->object.find("bench"); it != root->object.end()) {
    report.bench = it->second->string;
  }
  if (auto it = root->object.find("build");
      it != root->object.end() &&
      it->second->kind == JsonValue::Kind::kObject) {
    if (auto flags = it->second->object.find("flags");
        flags != it->second->object.end()) {
      report.build_flags = flags->second->string;
    }
  }
  if (auto it = root->object.find("simd");
      it != root->object.end() &&
      it->second->kind == JsonValue::Kind::kString) {
    report.simd = it->second->string;
  }
  auto metrics = root->object.find("metrics");
  if (metrics == root->object.end() ||
      metrics->second->kind != JsonValue::Kind::kArray) {
    *error = path + ": missing metrics array";
    return std::nullopt;
  }
  for (const auto& entry : metrics->second->array) {
    if (entry->kind != JsonValue::Kind::kObject) continue;
    auto name = entry->object.find("name");
    if (name == entry->object.end()) continue;
    Metric metric;
    if (auto it = entry->object.find("unit"); it != entry->object.end()) {
      metric.unit = it->second->string;
    }
    if (auto it = entry->object.find("value");
        it != entry->object.end() &&
        it->second->kind == JsonValue::Kind::kNumber) {
      metric.value = it->second->number;
      metric.has_value = true;
    }
    report.metrics[name->second->string] = metric;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Comparison.

struct Options {
  double threshold_throughput = 10.0;  // percent, "MB/s"
  double threshold_ratio = 5.0;        // percent, "x"
  std::set<std::string> ignore_units;
  bool quiet = false;
};

// Allowed relative drop for a unit; nullopt = informational only.
std::optional<double> ThresholdFor(const std::string& unit,
                                   const Options& options) {
  if (options.ignore_units.count(unit)) return std::nullopt;
  if (unit == "MB/s") return options.threshold_throughput;
  if (unit == "x") return options.threshold_ratio;
  return std::nullopt;
}

struct DiffCounts {
  int compared = 0;
  int regressions = 0;
  int missing = 0;
};

void DiffReports(const std::string& label, const Report& baseline,
                 const Report& current, const Options& options,
                 DiffCounts* counts) {
  for (const auto& [name, base] : baseline.metrics) {
    auto it = current.metrics.find(name);
    if (it == current.metrics.end()) {
      ++counts->missing;
      std::fprintf(stderr, "WARN  %s %s: metric missing from current run\n",
                   label.c_str(), name.c_str());
      continue;
    }
    const Metric& cur = it->second;
    if (!base.has_value || !cur.has_value) continue;
    ++counts->compared;

    const double delta_pct =
        base.value == 0.0 ? 0.0
                          : 100.0 * (cur.value - base.value) / base.value;
    const auto threshold = ThresholdFor(base.unit, options);
    const bool gated = threshold.has_value();
    const bool regressed = gated && delta_pct < -*threshold;
    if (regressed) {
      ++counts->regressions;
      std::fprintf(stderr,
                   "FAIL  %s %s: %.4g -> %.4g %s (%+.1f%%, allowed -%.1f%%)\n",
                   label.c_str(), name.c_str(), base.value, cur.value,
                   base.unit.c_str(), delta_pct, *threshold);
    } else if (!options.quiet) {
      std::printf("%s  %s %s: %.4g -> %.4g %s (%+.1f%%)\n",
                  gated ? "ok  " : "info", label.c_str(), name.c_str(),
                  base.value, cur.value, base.unit.c_str(), delta_pct);
    }
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff <baseline> <current> [--threshold-throughput PCT]\n"
      "                  [--threshold-ratio PCT] [--ignore-unit UNIT]...\n"
      "                  [--quiet]\n"
      "<baseline>/<current> are BENCH_*.json files or directories of them.\n");
  return 2;
}

// A directory argument expands to its BENCH_*.json files, keyed by name.
std::map<std::string, std::string> ExpandArg(const std::string& arg,
                                             std::string* error) {
  namespace fs = std::filesystem;
  std::map<std::string, std::string> files;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    for (const auto& entry : fs::directory_iterator(arg, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files[name] = entry.path().string();
      }
    }
    if (ec) *error = arg + ": " + ec.message();
    if (files.empty() && error->empty()) {
      *error = arg + ": no BENCH_*.json files found";
    }
  } else if (fs::exists(arg, ec)) {
    files[fs::path(arg).filename().string()] = arg;
  } else {
    *error = arg + ": no such file or directory";
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // A regression gate with a garbled threshold must not silently gate at
    // 0 (atof's fallback): reject anything but a positive finite number.
    auto parse_threshold = [&](double* out) -> bool {
      const char* v = next();
      if (!v) return false;
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || errno == ERANGE ||
          !std::isfinite(parsed) || parsed <= 0.0) {
        std::fprintf(stderr, "%s: \"%s\" is not a positive finite number\n",
                     arg.c_str(), v);
        return false;
      }
      *out = parsed;
      return true;
    };
    if (arg == "--threshold-throughput") {
      if (!parse_threshold(&options.threshold_throughput)) return Usage();
    } else if (arg == "--threshold-ratio") {
      if (!parse_threshold(&options.threshold_ratio)) return Usage();
    } else if (arg == "--ignore-unit") {
      const char* v = next();
      if (!v) return Usage();
      options.ignore_units.insert(v);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage();

  std::string error;
  const auto baseline_files = ExpandArg(positional[0], &error);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 3;
  }
  const auto current_files = ExpandArg(positional[1], &error);
  if (!error.empty()) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 3;
  }

  // Directories match by file name; two single files compare directly.
  std::vector<std::pair<std::string, std::string>> pairs;
  if (baseline_files.size() == 1 && current_files.size() == 1) {
    pairs.emplace_back(baseline_files.begin()->second,
                       current_files.begin()->second);
  } else {
    for (const auto& [name, path] : baseline_files) {
      auto it = current_files.find(name);
      if (it == current_files.end()) {
        std::fprintf(stderr, "WARN  %s: present in baseline only\n",
                     name.c_str());
        continue;
      }
      pairs.emplace_back(path, it->second);
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "bench_diff: no matching reports to compare\n");
      return 3;
    }
  }

  DiffCounts counts;
  for (const auto& [base_path, cur_path] : pairs) {
    auto baseline = LoadReport(base_path, &error);
    if (!baseline) {
      std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
      return 3;
    }
    auto current = LoadReport(cur_path, &error);
    if (!current) {
      std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
      return 3;
    }
    const std::string label =
        baseline->bench.empty()
            ? std::filesystem::path(base_path).filename().string()
            : baseline->bench;
    // Numbers from different flag sets are comparable in ratio ("x") but not
    // in throughput; never compare them silently.
    if (!baseline->build_flags.empty() && !current->build_flags.empty() &&
        baseline->build_flags != current->build_flags) {
      std::fprintf(stderr,
                   "WARN  %s: build flags differ (baseline \"%s\" vs "
                   "current \"%s\")\n",
                   label.c_str(), baseline->build_flags.c_str(),
                   current->build_flags.c_str());
    }
    // Same story for the dispatched SIMD variant: a scalar run compared
    // against an avx2 baseline reads as a throughput regression that is
    // really a host/override difference. Annotate, never gate — ratio
    // metrics stay byte-identical across variants by construction.
    if (!baseline->simd.empty() && !current->simd.empty() &&
        baseline->simd != current->simd) {
      std::fprintf(stderr,
                   "NOTE  %s: SIMD variant differs (baseline \"%s\" vs "
                   "current \"%s\"); throughput deltas reflect dispatch, "
                   "not code changes\n",
                   label.c_str(), baseline->simd.c_str(),
                   current->simd.c_str());
    }
    DiffReports(label, *baseline, *current, options, &counts);
  }

  std::printf("bench_diff: %d metric(s) compared, %d regression(s), "
              "%d missing\n",
              counts.compared, counts.regressions, counts.missing);
  return counts.regressions > 0 ? 1 : 0;
}
