#!/bin/sh
# Renders the folded-stack output of `mdz --profile` (or GET /profilez) as a
# self-contained flame-graph SVG, using only POSIX sh + sort/awk — the image
# has no perl, so this replaces the classic flamegraph.pl for our purposes.
#
#   tools/flamegraph.sh [--title T] [--width PX] [profile.folded] > out.svg
#
# Input lines are `frame;frame;...;frame COUNT` (root first, leaf last, the
# trailing integer is the sample count). Reads stdin when no file is given.
# Frames sharing a prefix merge into one rect; rect width is proportional to
# total samples underneath; hovering a rect shows the full frame name and
# its share. Root frames sit at the bottom, leaves at the top.
set -eu

TITLE="mdz CPU profile"
WIDTH=1200
INPUT=""
while [ $# -gt 0 ]; do
  case "$1" in
    --title) TITLE="$2"; shift 2 ;;
    --width) WIDTH="$2"; shift 2 ;;
    -h|--help)
      echo "usage: $0 [--title T] [--width PX] [profile.folded]" >&2
      exit 2 ;;
    -*)
      echo "flamegraph.sh: unknown flag $1" >&2
      exit 2 ;;
    *) INPUT="$1"; shift ;;
  esac
done

if [ -n "$INPUT" ] && [ ! -s "$INPUT" ]; then
  echo "flamegraph.sh: input missing or empty: $INPUT" >&2
  exit 1
fi

# Lexicographic sort makes stacks sharing a prefix adjacent, so one linear
# pass can merge them into rects (the classic flamegraph algorithm).
{ if [ -n "$INPUT" ]; then sort "$INPUT"; else sort; fi } | awk -v \
    title="$TITLE" -v img_w="$WIDTH" '
  # One folded line: everything before the last space is the stack, the
  # trailing integer is the sample count. Demangled C++ frame names may
  # themselves contain spaces, so split on the *last* space only.
  /^[^ ].* [0-9]+$/ {
    if (!match($0, / [0-9]+$/)) next
    count = substr($0, RSTART + 1) + 0
    stack = substr($0, 1, RSTART - 1)
    n = split(stack, f, ";")
    if (n == 0 || count <= 0) next

    # Close every open frame below the common prefix with the previous
    # stack (deepest first), recording its final extent as a rect.
    common = 1
    while (common <= n && common <= prev_n && f[common] == prev[common])
      ++common
    for (d = prev_n; d >= common; --d) Close(d)
    for (d = common; d <= n; ++d) { open_name[d] = f[d]; open_x[d] = total }
    if (n > max_depth) max_depth = n
    total += count
    for (d = 1; d <= n; ++d) prev[d] = f[d]
    prev_n = n
  }

  function Close(d) {
    rects++
    r_name[rects] = open_name[d]
    r_x[rects] = open_x[d]
    r_w[rects] = total - open_x[d]
    r_d[rects] = d
  }

  function Esc(s) {
    gsub(/&/, "\\&amp;", s)
    gsub(/</, "\\&lt;", s)
    gsub(/>/, "\\&gt;", s)
    gsub(/"/, "\\&quot;", s)
    return s
  }

  # Deterministic warm color from the frame name, so the same function gets
  # the same shade across graphs.
  function Color(name,   h, i) {
    h = 0
    for (i = 1; i <= length(name); ++i)
      h = (h * 31 + index(chars, substr(name, i, 1))) % 1048573
    return sprintf("rgb(%d,%d,%d)", 205 + h % 50, 60 + (h * 7) % 130, \
                   (h * 13) % 40)
  }

  BEGIN {
    chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" \
            "0123456789_:~<>()[]*&,;. "
  }

  END {
    for (d = prev_n; d >= 1; --d) Close(d)
    if (total == 0) {
      print "flamegraph.sh: no folded samples in input" > "/dev/stderr"
      exit 1
    }
    row_h = 16
    top = 34
    img_h = top + max_depth * row_h + 12
    printf "<?xml version=\"1.0\" standalone=\"no\"?>\n"
    printf "<svg version=\"1.1\" width=\"%d\" height=\"%d\"", img_w, img_h
    printf " xmlns=\"http://www.w3.org/2000/svg\">\n"
    printf "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\"", img_w, img_h
    printf " fill=\"#f8f8f8\"/>\n"
    printf "<text x=\"%d\" y=\"22\" text-anchor=\"middle\"", img_w / 2
    printf " font-family=\"monospace\" font-size=\"15\">%s (%d samples)" \
           "</text>\n", Esc(title), total
    scale = (img_w - 20) / total
    for (i = 1; i <= rects; ++i) {
      x = 10 + r_x[i] * scale
      w = r_w[i] * scale
      if (w < 0.3) continue      # sub-third-pixel rects are invisible anyway
      y = top + (max_depth - r_d[i]) * row_h
      pct = 100.0 * r_w[i] / total
      printf "<g><title>%s: %d samples (%.1f%%)</title>", \
             Esc(r_name[i]), r_w[i], pct
      printf "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\"", \
             x, y, w, row_h - 1
      printf " fill=\"%s\" rx=\"1\"/>", Color(r_name[i])
      if (w > 34) {
        # Truncate to what fits at ~7.2px/char; leave room for a margin.
        label = r_name[i]
        fit = int((w - 6) / 7.2)
        if (length(label) > fit) label = substr(label, 1, fit > 2 ? fit : 2)
        printf "<text x=\"%.1f\" y=\"%d\" font-family=\"monospace\"", \
               x + 3, y + row_h - 5
        printf " font-size=\"12\">%s</text>", Esc(label)
      }
      printf "</g>\n"
    }
    print "</svg>"
  }
'
