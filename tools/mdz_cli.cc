// mdz — command-line front end for the MDZ compressor.
//
//   mdz gen <dataset> <out.mdtraj|.xyz> [--scale S] [--seed N]
//   mdz compress <in.mdtraj|.xyz> <out.mdza> [--eb E] [--abs] [--bs N]
//                [--method adp|vq|vqt|mt|ti|l2d|ba] [--methods LIST]
//                [--eb-split F] [--quant-scale N] [--seq1] [--v1]
//                [--stream] [--metrics-json F] [--metrics-prom F] [--trace F]
//   mdz decompress <in.mdza> <out.mdtraj|.xyz> [--stream] [--metrics-json F]
//   mdz append <archive.mdza> <in.mdtraj|.xyz> [--threads N]
//   mdz extract <in.mdza> <out.mdtraj|.xyz> --snapshots a:b
//               [--particles p:q] [--metrics-json F]
//   mdz index <archive.mdza> [--json]
//   mdz repack <in.mdza> <out.mdza> [--v1]
//   mdz info <file.mdza|file.mdtraj>
//   mdz stats <file.mdza> [--json]
//   mdz verify <original.mdtraj|.xyz> <compressed.mdza>
//   mdz audit <archive.mdza> <original.mdtraj|.xyz> [--json]
//             [--quality-trace F]
//   mdz version [--json]
//   mdz datasets
//
// Files ending in ".xyz" are read/written as XYZ text; everything else is
// the binary mdtraj format.
//
// `verify` prints error metrics for a human; `audit` is the machine-checked
// contract: it streams the archive block by block against the original and
// turns any sample beyond the stream's error bound into exit code 5.
//
// Exit codes (asserted by tests/cli_test.sh):
//   0    success
//   1    other runtime failure
//   2    usage error / invalid arguments
//   3    I/O failure (unreadable input, unwritable output)
//   4    corrupt archive
//   5    error-bound violation found by audit
//   130  streamed run interrupted (SIGINT/SIGTERM); the archive/output is
//        sealed and valid but holds only the snapshots pumped so far

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/metrics.h"
#include "archive/format.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "core/mdz.h"
#include "core/parallel.h"
#include "core/quality_audit.h"
#include "core/streaming.h"
#include "core/thread_pool.h"
#include "datagen/generators.h"
#include "io/archive.h"
#include "io/streaming.h"
#include "io/trajectory_io.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/cpu.h"
#include "util/timer.h"

#include <chrono>
#include <thread>

namespace {

using mdz::Result;
using mdz::Status;
using mdz::core::Trajectory;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitCorruption = 4;
constexpr int kExitBoundViolation = 5;
// 128 + SIGINT: a cancelled --stream/append run sealed a valid but partial
// output; scripts must not mistake it for a complete one.
constexpr int kExitInterrupted = 130;

constexpr const char* kMdzVersion = "0.3.0";

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case mdz::StatusCode::kInvalidArgument:
    case mdz::StatusCode::kFailedPrecondition:
    case mdz::StatusCode::kOutOfRange:  // e.g. --snapshots beyond the archive
      return kExitUsage;
    case mdz::StatusCode::kInternal:  // the io/ layer's file errors
      return kExitIo;
    case mdz::StatusCode::kCorruption:
      return kExitCorruption;
    default:
      return kExitFailure;
  }
}

// --quiet suppresses this (informational stdout); errors still reach stderr.
bool g_quiet = false;

// Set by the SIGINT/SIGTERM handler; the streaming pump polls it and winds
// down gracefully (seals the archive, flushes telemetry files). A second
// signal exits immediately with the conventional 128+SIGINT code.
std::atomic<bool> g_interrupted{false};

// Set by SIGHUP while `mdz serve` runs; the serve loop re-reads the config
// file and applies it without dropping connections.
std::atomic<bool> g_reload{false};

void HandleSignal(int) {
  if (g_interrupted.exchange(true)) _exit(130);
}

void HandleReloadSignal(int) { g_reload.store(true); }

void InstallSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

template <typename... Args>
void Say(const char* format, Args... args) {
  if (!g_quiet) std::printf(format, args...);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Trajectory> ReadTrajectoryAuto(const std::string& path) {
  if (EndsWith(path, ".xyz")) return mdz::io::ReadXyzTrajectory(path);
  return mdz::io::ReadBinaryTrajectory(path);
}

Status WriteTrajectoryAuto(const Trajectory& trajectory,
                           const std::string& path) {
  if (EndsWith(path, ".xyz")) {
    return mdz::io::WriteXyzTrajectory(trajectory, path);
  }
  return mdz::io::WriteBinaryTrajectory(trajectory, path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mdz gen <dataset> <out.mdtraj|.xyz> [--scale S] [--seed N]\n"
               "  mdz compress <in> <out.mdza> [--eb E] [--abs] [--bs N]\n"
               "               [--method adp|vq|vqt|mt|ti|l2d|ba]\n"
               "               [--methods vq,vqt,mt,ti,l2d,ba] [--eb-split F]\n"
               "               [--quant-scale N]\n"
               "               [--seq1] [--interp] [--threads N] [--audit]\n"
               "               [--stream]\n"
               "               [--metrics-json F] [--metrics-prom F] [--trace F]\n"
               "  mdz decompress <in.mdza> <out.mdtraj|.xyz> [--threads N]\n"
               "               [--stream] [--metrics-json F] [--metrics-prom F]\n"
               "  mdz append <archive.mdza> <in.mdtraj|.xyz> [--threads N]\n"
               "  mdz extract <in.mdza> <out.mdtraj|.xyz> --snapshots a:b\n"
               "               [--particles p:q] [--cache-frames N]\n"
               "               [--metrics-json F] [--metrics-prom F]\n"
               "  mdz index <archive.mdza> [--json]\n"
               "  mdz repack <in.mdza> <out.mdza> [--v1]\n"
               "  mdz info <file.mdza|file.mdtraj>\n"
               "  mdz stats <file.mdza> [--json]\n"
               "  mdz verify <original> <compressed.mdza>\n"
               "  mdz audit <archive.mdza> <original> [--json]\n"
               "               [--quality-trace F] [--metrics-json F]\n"
               "               [--metrics-prom F]\n"
               "  mdz serve --root DIR --listen host:port [--http host:port]\n"
               "               [--config F] [--threads N] [--cache-mb N]\n"
               "  mdz query <host:port> stat|open|index|audit <archive>\n"
               "  mdz query <host:port> extract <archive> <out> --snapshots "
               "a:b\n"
               "               [--particles p:q]\n"
               "  mdz query <host:port> append <archive> <in.mdtraj|.xyz>\n"
               "               (query flags: --tenant T --deadline-ms N)\n"
               "  mdz version [--json]\n"
               "  mdz datasets\n"
               "global flags: --quiet --simd scalar|avx2|neon\n"
               "              --trace-timeline F (Chrome trace JSON)\n"
               "              --listen host:port (live /metrics /healthz "
               "/buildz /tracez /profilez /flightz)\n"
               "              --profile[=HZ] | --profile-hz N (sampling CPU "
               "profiler, default 99 Hz)\n"
               "              --profile-out F (folded stacks; *.json writes "
               "mdz.profile.v1)\n"
               "              --flight-recorder F (crash report on "
               "SIGSEGV/SIGBUS/SIGABRT/SIGFPE)\n");
  return kExitUsage;
}

// Strict decimal parse for unsigned flag values. The old `std::atoi` casts
// silently turned "--threads -1" into 4294967295 workers and "--bs garbage"
// into 0; here anything but plain digits in range is a usage error (exit 2).
Result<uint64_t> ParseUint(const std::string& value, const std::string& flag,
                           uint64_t max_value) {
  bool digits_only = !value.empty();
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) digits_only = false;
  }
  if (!digits_only) {
    return Status::InvalidArgument(flag + " expects a non-negative integer, " +
                                   "got \"" + value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno == ERANGE || end != value.c_str() + value.size() ||
      parsed > max_value) {
    return Status::InvalidArgument(flag + " value out of range: \"" + value +
                                   "\" (max " + std::to_string(max_value) +
                                   ")");
  }
  return static_cast<uint64_t>(parsed);
}

// Strict decimal parse for floating-point flag values. The old `std::atof`
// turned "--eb garbage" into 0.0 (a zero bound baked into the archive) and
// silently ignored trailing junk in "1e-3x"; here the whole token must parse
// as a finite double — NaN, Inf, over/underflow and partial parses are usage
// errors (exit 2).
Result<double> ParseDouble(const std::string& value, const std::string& flag) {
  errno = 0;
  char* end = nullptr;
  const double parsed =
      value.empty() ? 0.0 : std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      errno == ERANGE || !std::isfinite(parsed)) {
    return Status::InvalidArgument(flag +
                                   " expects a finite decimal number, got \"" +
                                   value + "\"");
  }
  return parsed;
}

// Method-name mapping shared by --method (fixed modes) and --methods (the
// ADP candidate allow-list). "adp" is handled separately — it is a mode
// selector, not a block method.
std::optional<mdz::core::Method> MethodFromName(const std::string& name) {
  if (name == "vq") return mdz::core::Method::kVQ;
  if (name == "vqt") return mdz::core::Method::kVQT;
  if (name == "mt") return mdz::core::Method::kMT;
  if (name == "ti") return mdz::core::Method::kTI;
  if (name == "l2d") return mdz::core::Method::kLorenzo2D;
  if (name == "ba") return mdz::core::Method::kBitAdaptive;
  return std::nullopt;
}

// Minimal flag scanner: flags may appear anywhere after the positionals.
struct Flags {
  std::vector<std::string> positional;
  double eb = 1e-3;
  bool absolute = false;
  uint32_t bs = 10;
  std::string method = "adp";
  uint32_t quant_scale = 1024;
  bool seq1 = false;
  bool interp = false;  // adds the TI predictor to ADP's candidates
  std::string methods;  // --methods: comma-separated ADP candidate list
  double eb_split = 1.0;  // bit-adaptive quantizer share of the bound
  double scale = 1.0;
  uint64_t seed = 0;
  // Worker threads for compress/decompress: 0 = all hardware threads
  // (default), 1 = serial. Output bytes are identical at any thread count.
  uint32_t threads = 0;
  // Telemetry sinks (docs/OBSERVABILITY.md). Any of these being set turns
  // the obs subsystem on for the run; empty means no file is written.
  std::string metrics_json;
  std::string metrics_prom;
  std::string trace_path;
  std::string trace_timeline;  // Chrome trace-event JSON of the whole run
  std::string listen;          // host:port for the live telemetry endpoint
  std::string quality_trace;  // per-block quality JSONL (audit / --audit)
  bool profile = false;       // sampling CPU profiler around the command
  uint32_t profile_hz = 99;   // --profile=HZ / --profile-hz N
  std::string profile_out;    // folded text, or mdz.profile.v1 for *.json
  std::string flight_recorder;  // crash-report path (installs the handlers)
  bool json = false;          // `mdz stats|audit|version --json`
  bool audit = false;         // `mdz compress --audit`: verify after writing
  bool stream = false;        // compress/decompress: bounded-memory pipeline
  bool v1 = false;            // `compress`/`repack`: write legacy v1 container
  std::string snapshots;      // `extract --snapshots a:b` (half-open range)
  std::string particles;      // `extract --particles p:q` (half-open range)
  uint32_t cache_frames = 32;  // `extract`: decoded-frame LRU capacity
  std::string simd;  // kernel variant override (scalar|avx2|neon); "" = auto
  // `mdz serve` (docs/SERVICE.md): --listen is the binary endpoint there,
  // --http the optional ops endpoint (same surfaces as the global --listen).
  std::string root;      // serve: fleet root directory
  std::string http;      // serve: host:port for /metrics /healthz ...
  std::string config;    // serve: config file (re-read on SIGHUP)
  uint32_t cache_mb = 0;  // serve: shared frame-cache budget; 0 = config
  // `mdz query`: tenant id and per-request deadline sent with each request.
  std::string tenant;
  uint32_t deadline_ms = 0;

  bool telemetry() const {
    return !metrics_json.empty() || !metrics_prom.empty() ||
           !trace_path.empty() || !trace_timeline.empty() || !listen.empty();
  }

  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_value = [&]() -> Result<std::string> {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("missing value for " + arg);
        }
        return std::string(argv[++i]);
      };
      if (arg == "--eb") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(flags.eb, ParseDouble(v, arg));
        if (!(flags.eb > 0.0)) {
          return Status::InvalidArgument("--eb must be positive, got \"" + v +
                                         "\"");
        }
      } else if (arg == "--eb-split") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(flags.eb_split, ParseDouble(v, arg));
        if (!(flags.eb_split > 0.0) || flags.eb_split > 1.0) {
          return Status::InvalidArgument("--eb-split must be in (0, 1], got \"" +
                                         v + "\"");
        }
      } else if (arg == "--methods") {
        MDZ_ASSIGN_OR_RETURN(flags.methods, next_value());
      } else if (arg == "--abs") {
        flags.absolute = true;
      } else if (arg == "--bs") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.bs = static_cast<uint32_t>(parsed);
      } else if (arg == "--method") {
        MDZ_ASSIGN_OR_RETURN(flags.method, next_value());
      } else if (arg == "--quant-scale") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.quant_scale = static_cast<uint32_t>(parsed);
      } else if (arg == "--seq1") {
        flags.seq1 = true;
      } else if (arg == "--interp") {
        flags.interp = true;
      } else if (arg == "--scale") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(flags.scale, ParseDouble(v, arg));
        if (!(flags.scale > 0.0)) {
          return Status::InvalidArgument("--scale must be positive, got \"" +
                                         v + "\"");
        }
      } else if (arg == "--seed") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(flags.seed, ParseUint(v, arg, UINT64_MAX));
      } else if (arg == "--threads") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.threads = static_cast<uint32_t>(parsed);
      } else if (arg == "--metrics-json") {
        MDZ_ASSIGN_OR_RETURN(flags.metrics_json, next_value());
      } else if (arg == "--metrics-prom") {
        MDZ_ASSIGN_OR_RETURN(flags.metrics_prom, next_value());
      } else if (arg == "--trace") {
        MDZ_ASSIGN_OR_RETURN(flags.trace_path, next_value());
      } else if (arg == "--trace-timeline") {
        MDZ_ASSIGN_OR_RETURN(flags.trace_timeline, next_value());
      } else if (arg == "--listen") {
        MDZ_ASSIGN_OR_RETURN(flags.listen, next_value());
      } else if (arg == "--quality-trace") {
        MDZ_ASSIGN_OR_RETURN(flags.quality_trace, next_value());
      } else if (arg == "--profile") {
        flags.profile = true;
      } else if (arg.rfind("--profile=", 0) == 0) {
        flags.profile = true;
        MDZ_ASSIGN_OR_RETURN(
            const uint64_t parsed,
            ParseUint(arg.substr(std::strlen("--profile=")), "--profile",
                      1000));
        flags.profile_hz = static_cast<uint32_t>(parsed);
      } else if (arg == "--profile-hz") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed, ParseUint(v, arg, 1000));
        flags.profile = true;
        flags.profile_hz = static_cast<uint32_t>(parsed);
      } else if (arg == "--profile-out") {
        MDZ_ASSIGN_OR_RETURN(flags.profile_out, next_value());
        flags.profile = true;
      } else if (arg == "--flight-recorder") {
        MDZ_ASSIGN_OR_RETURN(flags.flight_recorder, next_value());
      } else if (arg == "--stream") {
        flags.stream = true;
      } else if (arg == "--audit") {
        flags.audit = true;
      } else if (arg == "--v1") {
        flags.v1 = true;
      } else if (arg == "--snapshots") {
        MDZ_ASSIGN_OR_RETURN(flags.snapshots, next_value());
      } else if (arg == "--particles") {
        MDZ_ASSIGN_OR_RETURN(flags.particles, next_value());
      } else if (arg == "--root") {
        MDZ_ASSIGN_OR_RETURN(flags.root, next_value());
      } else if (arg == "--http") {
        MDZ_ASSIGN_OR_RETURN(flags.http, next_value());
      } else if (arg == "--config") {
        MDZ_ASSIGN_OR_RETURN(flags.config, next_value());
      } else if (arg == "--cache-mb") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.cache_mb = static_cast<uint32_t>(parsed);
      } else if (arg == "--tenant") {
        MDZ_ASSIGN_OR_RETURN(flags.tenant, next_value());
      } else if (arg == "--deadline-ms") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.deadline_ms = static_cast<uint32_t>(parsed);
      } else if (arg == "--cache-frames") {
        MDZ_ASSIGN_OR_RETURN(auto v, next_value());
        MDZ_ASSIGN_OR_RETURN(const uint64_t parsed,
                             ParseUint(v, arg, UINT32_MAX));
        flags.cache_frames = static_cast<uint32_t>(parsed);
      } else if (arg == "--simd") {
        MDZ_ASSIGN_OR_RETURN(flags.simd, next_value());
        if (!mdz::util::ParseSimdVariant(flags.simd).has_value()) {
          return Status::InvalidArgument(
              "unknown --simd variant: \"" + flags.simd +
              "\" (expected scalar, avx2 or neon)");
        }
      } else if (arg == "--json") {
        flags.json = true;
      } else if (arg == "--quiet") {
        g_quiet = true;
      } else if (arg.rfind("--", 0) == 0) {
        return Status::InvalidArgument("unknown flag: " + arg);
      } else {
        flags.positional.push_back(arg);
      }
    }
    return flags;
  }

  Result<mdz::core::Options> ToOptions() const {
    mdz::core::Options options;
    options.error_bound = eb;
    options.error_bound_mode = absolute
                                   ? mdz::core::ErrorBoundMode::kAbsolute
                                   : mdz::core::ErrorBoundMode::kValueRangeRelative;
    options.buffer_size = bs;
    options.quantization_scale = quant_scale;
    options.layout = seq1 ? mdz::core::CodeLayout::kSnapshotMajor
                          : mdz::core::CodeLayout::kParticleMajor;
    options.enable_interpolation = interp;
    options.eb_split = eb_split;
    if (method == "adp") {
      options.method = mdz::core::Method::kAdaptive;
    } else if (const auto fixed = MethodFromName(method)) {
      options.method = *fixed;
    } else {
      return Status::InvalidArgument("unknown method: " + method);
    }
    if (!methods.empty()) {
      if (options.method != mdz::core::Method::kAdaptive) {
        return Status::InvalidArgument(
            "--methods selects ADP candidates and requires --method adp");
      }
      std::string rest = methods;
      while (!rest.empty()) {
        const size_t comma = rest.find(',');
        const std::string name = rest.substr(0, comma);
        rest = (comma == std::string::npos) ? "" : rest.substr(comma + 1);
        const auto m = MethodFromName(name);
        if (!m.has_value()) {
          return Status::InvalidArgument(
              "--methods expects a comma-separated subset of "
              "vq,vqt,mt,ti,l2d,ba; got \"" +
              name + "\"");
        }
        options.adp_methods.push_back(*m);
      }
    }
    MDZ_RETURN_IF_ERROR(options.Validate());
    return options;
  }
};

// Parses a half-open "a:b" range (a <= index < b) into {first, count}. Each
// half goes through the same strict parse as the numeric flags, and reversed
// ("5:2") vs empty ("3:3") ranges are called out separately — both used to
// fall through strtoull as silent nonsense.
Result<std::pair<size_t, size_t>> ParseRange(const std::string& spec,
                                             const std::string& flag) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        flag + " expects a half-open range a:b, got \"" + spec + "\"");
  }
  MDZ_ASSIGN_OR_RETURN(const uint64_t a,
                       ParseUint(spec.substr(0, colon), flag, UINT64_MAX));
  MDZ_ASSIGN_OR_RETURN(const uint64_t b,
                       ParseUint(spec.substr(colon + 1), flag, UINT64_MAX));
  if (b < a) {
    return Status::InvalidArgument(flag + " range is reversed: \"" + spec +
                                   "\"");
  }
  if (b == a) {
    return Status::InvalidArgument(flag + " range is empty: \"" + spec + "\"");
  }
  return std::make_pair(static_cast<size_t>(a), static_cast<size_t>(b - a));
}

// Writes the requested metrics files after a telemetry-enabled run. Returns
// the exit code: kExitOk, or kExitIo on the first failed write.
int WriteMetricsFiles(const Flags& flags) {
  const auto& registry = mdz::obs::MetricsRegistry::Global();
  if (!flags.metrics_json.empty()) {
    const Status s = mdz::obs::WriteJsonFile(registry, flags.metrics_json);
    if (!s.ok()) return Fail(s);
  }
  if (!flags.metrics_prom.empty()) {
    const Status s = mdz::obs::WritePrometheusFile(registry, flags.metrics_prom);
    if (!s.ok()) return Fail(s);
  }
  return kExitOk;
}

// Shared by `mdz audit` and `mdz compress --audit`: streams the compressed
// axes against the original, prints the report (table or mdz.quality.v1
// JSON), and maps any bound violation to kExitBoundViolation.
int RunAudit(const mdz::core::CompressedTrajectory& compressed,
             const Trajectory& original, const Flags& flags,
             const std::string& archive_label,
             const std::string& original_label) {
  mdz::core::AuditOptions audit_options;
  audit_options.telemetry = flags.telemetry();
  if (flags.telemetry()) mdz::obs::SetEnabled(true);

  std::unique_ptr<mdz::obs::QualityTraceSink> qtrace;
  if (!flags.quality_trace.empty()) {
    auto sink = mdz::obs::QualityTraceSink::Open(flags.quality_trace);
    if (!sink.ok()) return Fail(sink.status());
    qtrace = std::move(sink).value();
    audit_options.trace = qtrace.get();
  }

  auto report = mdz::core::AuditTrajectory(compressed, original, audit_options);
  if (!report.ok()) return Fail(report.status());
  if (qtrace != nullptr) {
    const Status ts = qtrace->Close();
    if (!ts.ok()) return Fail(ts);
    Say("quality trace: %llu block records -> %s\n",
        static_cast<unsigned long long>(qtrace->records_written()),
        flags.quality_trace.c_str());
  }

  if (flags.json) {
    std::printf("%s\n",
                mdz::obs::QualityReportToJson(*report, archive_label,
                                              original_label)
                    .c_str());
  } else {
    Say("%-6s %-12s %-12s %-12s %-10s %-10s %s\n", "Axis", "Bound", "MaxError",
        "Bias", "PSNR_dB", "NRMSE", "Violations");
    for (const auto& f : report->fields) {
      Say("%-6c %-12.6g %-12.6g %-12.3g %-10.1f %-10.4g %llu\n",
          "xyz?"[f.axis >= 0 && f.axis < 3 ? f.axis : 3], f.bound,
          f.stats.max_err, f.stats.mean_err(), f.stats.psnr_db(),
          f.stats.nrmse(), static_cast<unsigned long long>(f.stats.violations));
    }
  }

  if (!report->clean()) {
    std::fprintf(stderr,
                 "audit: FAIL — %llu of %llu samples beyond the error bound\n",
                 static_cast<unsigned long long>(report->total_violations()),
                 static_cast<unsigned long long>(report->total_samples()));
    return kExitBoundViolation;
  }
  Say("audit: PASS — %llu samples within bound\n",
      static_cast<unsigned long long>(report->total_samples()));
  return kExitOk;
}

int CmdAudit(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  auto archive = mdz::io::ReadArchive(flags.positional[0]);
  if (!archive.ok()) return Fail(archive.status());
  auto original = ReadTrajectoryAuto(flags.positional[1]);
  if (!original.ok()) return Fail(original.status());
  const int code = RunAudit(archive->data, *original, flags,
                            flags.positional[0], flags.positional[1]);
  if (flags.telemetry()) {
    const int mcode = WriteMetricsFiles(flags);
    if (mcode != kExitOk) return mcode;
  }
  return code;
}

int CmdVersion(const Flags& flags) {
  const auto& build = mdz::obs::GetBuildInfo();
  if (flags.json) {
    std::printf("{\"name\":\"mdz\",\"version\":\"%s\",\"build\":%s}\n",
                kMdzVersion, mdz::obs::BuildInfoJson().c_str());
    return kExitOk;
  }
  std::printf("mdz %s\n", kMdzVersion);
  std::printf("  commit:    %s (%s)\n", build.git_describe.c_str(),
              build.git_sha.c_str());
  std::printf("  compiler:  %s\n", build.compiler.c_str());
  std::printf("  flags:     %s\n", build.flags.c_str());
  std::printf("  telemetry: compiled %s\n", build.obs_disabled ? "out" : "in");
  return kExitOk;
}

int CmdDatasets() {
  std::printf("%-10s %-10s\n", "Name", "State");
  for (const auto& info : mdz::datagen::AllDatasets()) {
    std::printf("%-10.*s %-10.*s\n", static_cast<int>(info.name.size()),
                info.name.data(), static_cast<int>(info.state.size()),
                info.state.data());
  }
  return 0;
}

int CmdGen(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  mdz::datagen::GeneratorOptions gen;
  gen.size_scale = flags.scale;
  gen.seed = flags.seed;
  auto trajectory = mdz::datagen::MakeByName(flags.positional[0], gen);
  if (!trajectory.ok()) return Fail(trajectory.status());
  const Status s = WriteTrajectoryAuto(*trajectory, flags.positional[1]);
  if (!s.ok()) return Fail(s);
  Say("wrote %s: %zu snapshots x %zu atoms (%.1f MB)\n",
      flags.positional[1].c_str(), trajectory->num_snapshots(),
      trajectory->num_particles(), trajectory->raw_bytes() / 1e6);
  return kExitOk;
}

// `compress --stream`: bounded-memory pipeline. Snapshots flow from the
// trajectory reader straight into the archive writer's append path, so peak
// memory is O(N * BS) however long the trajectory is; the output bytes are
// identical to the in-memory path's v2 archive.
int CmdCompressStream(const Flags& flags) {
  if (flags.v1) {
    return Fail(Status::InvalidArgument(
        "--stream writes v2 archives only; drop --v1 (or repack afterwards)"));
  }
  if (flags.audit) {
    return Fail(Status::InvalidArgument(
        "--audit needs the whole trajectory in memory; run `mdz audit` "
        "after a --stream compress instead"));
  }
  auto options = flags.ToOptions();
  if (!options.ok()) return Fail(options.status());
  if (flags.telemetry()) {
    options->telemetry = true;
    mdz::obs::SetEnabled(true);
  }

  auto reader = mdz::io::TrajectoryReader::Open(flags.positional[0]);
  if (!reader.ok()) return Fail(reader.status());

  mdz::core::ThreadPool pool(flags.threads);
  auto writer = mdz::archive::ArchiveWriter::Create(
      flags.positional[1], (*reader)->num_particles(), *options, &pool);
  if (!writer.ok()) return Fail(writer.status());

  mdz::io::ArchiveSink sink(std::move(writer).value());
  mdz::io::TrajectoryReader* source = reader->get();
  // Name and box are stamped at seal time: an XYZ source only knows its box
  // once the last frame has been read.
  sink.set_before_finish([source](mdz::archive::ArchiveWriter& w) {
    w.SetName(source->name());
    w.SetBox(source->box());
  });

  mdz::core::StreamOptions stream_options;
  stream_options.queue_capacity = options->buffer_size;
  stream_options.cancel = &g_interrupted;
  mdz::WallTimer timer;
  auto stats =
      mdz::core::StreamingCompressor::Pump(source, &sink, stream_options);
  if (!stats.ok()) return Fail(stats.status());
  const double seconds = timer.ElapsedSeconds();
  if (stats->cancelled) {
    std::fprintf(stderr,
                 "interrupted: archive sealed after %zu snapshots\n",
                 stats->snapshots);
  }

  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }

  size_t raw = 0;
  size_t out = 0;
  for (int axis = 0; axis < 3; ++axis) {
    raw += sink.writer().axis_stats(axis).raw_bytes;
    out += sink.writer().axis_stats(axis).compressed_bytes;
  }
  Say("%zu snapshots x %zu atoms: %.1f MB -> %.3f MB "
      "(ratio %.1fx, %.0f MB/s, peak %zu snapshots in flight)\n",
      stats->snapshots, sink.writer().num_particles(), raw / 1e6, out / 1e6,
      out > 0 ? static_cast<double>(raw) / out : 0.0, raw / 1e6 / seconds,
      stats->peak_in_flight);
  return stats->cancelled ? kExitInterrupted : kExitOk;
}

int CmdCompress(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  if (flags.stream) return CmdCompressStream(flags);
  auto options = flags.ToOptions();
  if (!options.ok()) return Fail(options.status());
  auto trajectory = ReadTrajectoryAuto(flags.positional[0]);
  if (!trajectory.ok()) return Fail(trajectory.status());

  std::unique_ptr<mdz::obs::TraceSink> trace;
  if (flags.telemetry()) {
    options->telemetry = true;
    if (!flags.trace_path.empty()) {
      auto sink = mdz::obs::TraceSink::Open(flags.trace_path);
      if (!sink.ok()) return Fail(sink.status());
      trace = std::move(sink).value();
      options->trace = trace.get();
    }
  }

  // A 0- or 1-thread pool runs serially; any other size fans per-axis work,
  // ADP trials, and block decodes out across the workers. The stream bytes
  // are identical either way.
  mdz::core::ThreadPool pool(flags.threads);
  mdz::WallTimer timer;
  auto compressed =
      mdz::core::CompressTrajectoryParallel(*trajectory, *options, &pool);
  if (!compressed.ok()) return Fail(compressed.status());
  const double seconds = timer.ElapsedSeconds();

  mdz::io::Archive archive;
  archive.data = std::move(compressed).value();
  archive.name = trajectory->name;
  archive.box = trajectory->box;
  const Status s = flags.v1
                       ? mdz::io::WriteArchive(archive, flags.positional[1])
                       : mdz::io::WriteArchiveV2(archive, flags.positional[1]);
  if (!s.ok()) return Fail(s);

  if (trace != nullptr) {
    const Status ts = trace->Close();
    if (!ts.ok()) return Fail(ts);
    Say("trace: %llu block events -> %s\n",
        static_cast<unsigned long long>(trace->records_written()),
        flags.trace_path.c_str());
  }

  // --audit re-decodes the archive we just wrote and certifies the bound,
  // before the metrics snapshot so the audit/* counters land in it.
  int audit_code = kExitOk;
  if (flags.audit) {
    audit_code = RunAudit(archive.data, *trajectory, flags,
                          flags.positional[1], flags.positional[0]);
    if (audit_code != kExitOk && audit_code != kExitBoundViolation) {
      return audit_code;
    }
  }
  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }
  if (audit_code != kExitOk) return audit_code;

  const size_t raw = trajectory->raw_bytes();
  const size_t out = archive.data.total_bytes();
  Say("%zu snapshots x %zu atoms: %.1f MB -> %.3f MB "
      "(ratio %.1fx, %.0f MB/s)\n",
      trajectory->num_snapshots(), trajectory->num_particles(), raw / 1e6,
      out / 1e6, static_cast<double>(raw) / out, raw / 1e6 / seconds);
  return kExitOk;
}

// `decompress --stream`: decodes one buffer-sized chunk of snapshots at a
// time and streams them into the trajectory writer; the output file is
// byte-identical to the in-memory path's.
int CmdDecompressStream(const Flags& flags) {
  uint8_t version = 0;
  if (mdz::archive::SniffArchiveVersion(flags.positional[0], &version) &&
      version < 2) {
    return Fail(Status::FailedPrecondition(
        "--stream needs a v2 archive; run `mdz repack` first"));
  }
  auto source = mdz::io::ArchiveSnapshotSource::Open(flags.positional[0]);
  if (!source.ok()) return Fail(source.status());

  mdz::io::TrajectoryWriter::Options writer_options;
  writer_options.name = (*source)->reader().name();
  writer_options.box = (*source)->reader().box();
  auto writer = mdz::io::TrajectoryWriter::Open(
      flags.positional[1], (*source)->num_particles(), writer_options);
  if (!writer.ok()) return Fail(writer.status());

  mdz::core::StreamOptions stream_options;
  stream_options.cancel = &g_interrupted;
  auto stats = mdz::core::StreamingCompressor::Pump(source->get(),
                                                    writer->get(),
                                                    stream_options);
  if (!stats.ok()) return Fail(stats.status());
  if (stats->cancelled) {
    std::fprintf(stderr, "interrupted: output sealed after %zu snapshots\n",
                 stats->snapshots);
  }

  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }
  Say("wrote %s: %zu snapshots x %zu atoms (peak %zu in flight)\n",
      flags.positional[1].c_str(), stats->snapshots,
      (*source)->num_particles(), stats->peak_in_flight);
  return stats->cancelled ? kExitInterrupted : kExitOk;
}

int CmdDecompress(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  if (flags.telemetry()) mdz::obs::SetEnabled(true);
  if (flags.stream) return CmdDecompressStream(flags);
  auto archive = mdz::io::ReadArchive(flags.positional[0]);
  if (!archive.ok()) return Fail(archive.status());
  mdz::core::ThreadPool pool(flags.threads);
  auto trajectory =
      mdz::core::DecompressTrajectoryParallel(archive->data, &pool);
  if (!trajectory.ok()) return Fail(trajectory.status());
  trajectory->name = archive->name;
  trajectory->box = archive->box;
  const Status s = WriteTrajectoryAuto(*trajectory, flags.positional[1]);
  if (!s.ok()) return Fail(s);
  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }
  Say("wrote %s: %zu snapshots x %zu atoms\n", flags.positional[1].c_str(),
      trajectory->num_snapshots(), trajectory->num_particles());
  return kExitOk;
}

// In-situ append: reopen a sealed v2 archive, resume the axis compressors
// where the stream left off, and stream the new trajectory in. The resealed
// file is byte-identical to one-shot compression of the concatenated input
// (see ArchiveWriter::Reopen for the contract and its preconditions).
int CmdAppend(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  if (flags.telemetry()) mdz::obs::SetEnabled(true);

  uint8_t version = 0;
  if (mdz::archive::SniffArchiveVersion(flags.positional[0], &version) &&
      version < 2) {
    return Fail(Status::FailedPrecondition(
        "append needs a v2 archive; run `mdz repack` first"));
  }

  auto options = flags.ToOptions();
  if (!options.ok()) return Fail(options.status());
  if (flags.telemetry()) options->telemetry = true;

  auto reader = mdz::io::TrajectoryReader::Open(flags.positional[1]);
  if (!reader.ok()) return Fail(reader.status());

  mdz::core::ThreadPool pool(flags.threads);
  auto writer =
      mdz::archive::ArchiveWriter::Reopen(flags.positional[0], *options, &pool);
  if (!writer.ok()) return Fail(writer.status());
  if ((*writer)->num_particles() != (*reader)->num_particles()) {
    return Fail(Status::InvalidArgument(
        "particle count mismatch: archive has " +
        std::to_string((*writer)->num_particles()) + " per snapshot, " +
        flags.positional[1] + " has " +
        std::to_string((*reader)->num_particles())));
  }
  const uint64_t already = (*writer)->snapshots_written();

  // No before-finish hook: the archive keeps its own name and box.
  mdz::io::ArchiveSink sink(std::move(writer).value());
  mdz::core::StreamOptions stream_options;
  stream_options.queue_capacity = options->buffer_size;
  stream_options.cancel = &g_interrupted;
  auto stats = mdz::core::StreamingCompressor::Pump(reader->get(), &sink,
                                                    stream_options);
  if (!stats.ok()) return Fail(stats.status());
  if (stats->cancelled) {
    std::fprintf(stderr,
                 "interrupted: archive sealed after %zu new snapshots\n",
                 stats->snapshots);
  }

  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }
  Say("appended %zu snapshots to %s (%llu total)\n", stats->snapshots,
      flags.positional[0].c_str(),
      static_cast<unsigned long long>(already + stats->snapshots));
  return stats->cancelled ? kExitInterrupted : kExitOk;
}

int CmdInfo(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  const std::string& path = flags.positional[0];
  auto archive = mdz::io::ReadArchive(path);
  if (archive.ok()) {
    std::printf("MDZ archive: %s\n", path.c_str());
    std::printf("  dataset:  %s\n",
                archive->name.empty() ? "(unnamed)" : archive->name.c_str());
    std::printf("  box:      %.3f %.3f %.3f\n", archive->box[0],
                archive->box[1], archive->box[2]);
    std::printf("  payload:  %.3f MB (x %.3f / y %.3f / z %.3f)\n",
                archive->data.total_bytes() / 1e6,
                archive->data.axes[0].size() / 1e6,
                archive->data.axes[1].size() / 1e6,
                archive->data.axes[2].size() / 1e6);
    auto trajectory = mdz::io::DecompressArchive(*archive);
    if (trajectory.ok()) {
      std::printf("  contents: %zu snapshots x %zu atoms (%.1f MB raw, "
                  "ratio %.1fx)\n",
                  trajectory->num_snapshots(), trajectory->num_particles(),
                  trajectory->raw_bytes() / 1e6,
                  static_cast<double>(trajectory->raw_bytes()) /
                      archive->data.total_bytes());
    }
    return 0;
  }
  auto trajectory = ReadTrajectoryAuto(path);
  if (!trajectory.ok()) return Fail(trajectory.status());
  std::printf("trajectory: %s\n", path.c_str());
  std::printf("  %zu snapshots x %zu atoms (%.1f MB)\n",
              trajectory->num_snapshots(), trajectory->num_particles(),
              trajectory->raw_bytes() / 1e6);
  std::printf("  box: %.3f %.3f %.3f\n", trajectory->box[0],
              trajectory->box[1], trajectory->box[2]);
  return 0;
}

// Per-axis block/method breakdown from the archive's block index alone (no
// payload decoding): which predictor won each buffer and where the bytes
// sit. This is the offline view of the data behind the paper's Fig. 10/11.
int CmdStats(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  if (flags.telemetry()) mdz::obs::SetEnabled(true);

  struct AxisStats {
    size_t blocks = 0;
    size_t snapshots = 0;
    size_t bytes = 0;
    size_t by_method[7] = {0, 0, 0, 0, 0, 0, 0};  // indexed by Method value
  };
  AxisStats per_axis[3];
  {
    // Scoped so the span closes (and its histogram observation lands)
    // before the quantile table below renders.
    MDZ_SPAN("stats_scan");
    auto archive = mdz::io::ReadArchive(flags.positional[0]);
    if (!archive.ok()) return Fail(archive.status());
    for (int axis = 0; axis < 3; ++axis) {
      auto decompressor =
          mdz::core::FieldDecompressor::Open(archive->data.axes[axis]);
      if (!decompressor.ok()) return Fail(decompressor.status());
      auto blocks = (*decompressor)->ListBlocks();
      if (!blocks.ok()) return Fail(blocks.status());
      AxisStats& a = per_axis[axis];
      a.bytes = archive->data.axes[axis].size();
      for (const auto& b : *blocks) {
        ++a.blocks;
        a.snapshots += b.snapshots;
        const auto m = static_cast<size_t>(b.method);
        if (m < 7) ++a.by_method[m];
      }
    }
  }

  const mdz::core::Method kMethods[] = {
      mdz::core::Method::kVQ, mdz::core::Method::kVQT, mdz::core::Method::kMT,
      mdz::core::Method::kTI, mdz::core::Method::kLorenzo2D,
      mdz::core::Method::kBitAdaptive};
  if (flags.json) {
    std::printf("{\"file\":\"%s\",\"axes\":[", flags.positional[0].c_str());
    for (int axis = 0; axis < 3; ++axis) {
      const AxisStats& a = per_axis[axis];
      std::printf("%s{\"axis\":\"%c\",\"blocks\":%zu,\"snapshots\":%zu,"
                  "\"bytes\":%zu,\"methods\":{",
                  axis == 0 ? "" : ",", "xyz"[axis], a.blocks, a.snapshots,
                  a.bytes);
      bool first = true;
      for (const auto m : kMethods) {
        std::printf("%s\"%.*s\":%zu", first ? "" : ",",
                    static_cast<int>(mdz::core::MethodName(m).size()),
                    mdz::core::MethodName(m).data(),
                    a.by_method[static_cast<size_t>(m)]);
        first = false;
      }
      std::printf("}}");
    }
    std::printf("]}\n");
    return WriteMetricsFiles(flags);
  }

  std::printf("%-6s %-8s %-10s %-6s %-6s %-6s %-6s %-6s %-6s %-10s\n", "Axis",
              "Blocks", "Snapshots", "VQ", "VQT", "MT", "TI", "L2D", "BA",
              "Bytes");
  for (int axis = 0; axis < 3; ++axis) {
    const AxisStats& a = per_axis[axis];
    std::printf(
        "%-6c %-8zu %-10zu %-6zu %-6zu %-6zu %-6zu %-6zu %-6zu %-10zu\n",
        "xyz"[axis], a.blocks, a.snapshots,
        a.by_method[static_cast<size_t>(mdz::core::Method::kVQ)],
        a.by_method[static_cast<size_t>(mdz::core::Method::kVQT)],
        a.by_method[static_cast<size_t>(mdz::core::Method::kMT)],
        a.by_method[static_cast<size_t>(mdz::core::Method::kTI)],
        a.by_method[static_cast<size_t>(mdz::core::Method::kLorenzo2D)],
        a.by_method[static_cast<size_t>(mdz::core::Method::kBitAdaptive)],
        a.bytes);
  }

  // With telemetry on, append derived latency quantiles for every observed
  // histogram (the same p50/p95/p99 the mdz.metrics.v1 JSON reports).
  if (flags.telemetry()) {
    const auto snap = mdz::obs::MetricsRegistry::Global().Collect();
    bool header = false;
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      if (!header) {
        std::printf("\n%-32s %-8s %-12s %-12s %-12s\n", "Histogram", "Count",
                    "p50_s", "p95_s", "p99_s");
        header = true;
      }
      std::printf("%-32s %-8llu %-12.6g %-12.6g %-12.6g\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  mdz::obs::HistogramQuantile(h.bounds, h.bucket_counts, 0.50),
                  mdz::obs::HistogramQuantile(h.bounds, h.bucket_counts, 0.95),
                  mdz::obs::HistogramQuantile(h.bounds, h.bucket_counts, 0.99));
    }
  }
  return WriteMetricsFiles(flags);
}

// Random access into a v2 archive: decodes only the frames covering the
// requested snapshot range (optionally sliced to a particle range) instead of
// replaying the whole stream. v1 archives are rejected with a pointer to
// `mdz repack`.
// Distinct hint for v1 inputs (asserted by tests/cli_test.sh): the v1
// container has no frame index, so random access needs a migration, not a
// different flag.
int RejectV1ForRandomAccess(const std::string& path, const char* verb) {
  return Fail(Status::FailedPrecondition(
      std::string(verb) + " needs a v2 archive: " + path +
      " is a v1 container; repack to v2 for random access (`mdz repack " +
      path + " <out.mdza>`)"));
}

int CmdExtract(const Flags& flags) {
  if (flags.positional.size() != 2 || flags.snapshots.empty()) return Usage();
  if (flags.telemetry()) mdz::obs::SetEnabled(true);

  uint8_t version = 0;
  if (mdz::archive::SniffArchiveVersion(flags.positional[0], &version) &&
      version < 2) {
    return RejectV1ForRandomAccess(flags.positional[0], "extract");
  }

  auto snap_range = ParseRange(flags.snapshots, "--snapshots");
  if (!snap_range.ok()) return Fail(snap_range.status());

  mdz::archive::ReaderOptions options;
  options.cache_frames = flags.cache_frames;
  auto reader = mdz::archive::ArchiveReader::Open(flags.positional[0], options);
  if (!reader.ok()) return Fail(reader.status());

  Result<std::vector<mdz::core::Snapshot>> snapshots =
      Status::Internal("unreachable");
  if (flags.particles.empty()) {
    snapshots =
        (*reader)->ReadSnapshots(snap_range->first, snap_range->second);
  } else {
    auto part_range = ParseRange(flags.particles, "--particles");
    if (!part_range.ok()) return Fail(part_range.status());
    snapshots =
        (*reader)->ReadParticles(snap_range->first, snap_range->second,
                                 part_range->first, part_range->second);
  }
  if (!snapshots.ok()) return Fail(snapshots.status());

  Trajectory trajectory;
  trajectory.name = (*reader)->name();
  trajectory.box = (*reader)->box();
  trajectory.snapshots = std::move(snapshots).value();
  const Status s = WriteTrajectoryAuto(trajectory, flags.positional[1]);
  if (!s.ok()) return Fail(s);

  if (flags.telemetry()) {
    const int code = WriteMetricsFiles(flags);
    if (code != kExitOk) return code;
  }
  const auto stats = (*reader)->stats();
  Say("extracted %zu snapshots x %zu atoms -> %s "
      "(%llu of %zu frames decoded, %llu reference decodes)\n",
      trajectory.num_snapshots(), trajectory.num_particles(),
      flags.positional[1].c_str(),
      static_cast<unsigned long long>(stats.frames_decoded),
      (*reader)->footer().frames.size(),
      static_cast<unsigned long long>(stats.reference_decodes));
  return kExitOk;
}

// Prints the v2 footer index: what a reader learns about the file without
// decoding any payload.
int CmdIndex(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  uint8_t version = 0;
  if (mdz::archive::SniffArchiveVersion(flags.positional[0], &version) &&
      version < 2) {
    return RejectV1ForRandomAccess(flags.positional[0], "index");
  }
  auto reader = mdz::archive::ArchiveReader::Open(flags.positional[0]);
  if (!reader.ok()) return Fail(reader.status());
  const mdz::archive::Footer& footer = (*reader)->footer();

  const auto ref_name = [](mdz::archive::ReferenceKind kind) {
    switch (kind) {
      case mdz::archive::ReferenceKind::kNone: return "none";
      case mdz::archive::ReferenceKind::kEncoded: return "encoded";
      case mdz::archive::ReferenceKind::kRaw: return "raw";
      case mdz::archive::ReferenceKind::kFirstFrame: return "first-frame";
    }
    return "?";
  };

  if (flags.json) {
    std::printf("{\"file\":\"%s\",\"version\":2,\"name\":\"%s\","
                "\"snapshots\":%llu,\"particles\":%llu,\"axes\":[",
                flags.positional[0].c_str(), footer.name.c_str(),
                static_cast<unsigned long long>(footer.num_snapshots),
                static_cast<unsigned long long>(footer.num_particles));
    for (int axis = 0; axis < 3; ++axis) {
      const auto& a = footer.axes[axis];
      std::printf("%s{\"axis\":\"%c\",\"chained\":%s,\"reference\":\"%s\"}",
                  axis == 0 ? "" : ",", "xyz"[axis],
                  a.chained ? "true" : "false", ref_name(a.ref_kind));
    }
    std::printf("],\"frames\":[");
    for (size_t i = 0; i < footer.frames.size(); ++i) {
      const auto& f = footer.frames[i];
      std::printf("%s{\"id\":%zu,\"axis\":\"%c\",\"method\":\"%.*s\","
                  "\"first_snapshot\":%llu,\"snapshots\":%llu,"
                  "\"offset\":%llu,\"bytes\":%llu}",
                  i == 0 ? "" : ",", i, "xyz"[f.axis % 3],
                  static_cast<int>(mdz::core::MethodName(f.method).size()),
                  mdz::core::MethodName(f.method).data(),
                  static_cast<unsigned long long>(f.first_snapshot),
                  static_cast<unsigned long long>(f.s_count),
                  static_cast<unsigned long long>(f.offset),
                  static_cast<unsigned long long>(f.frame_size));
    }
    std::printf("],\"build\":%s}\n", footer.build_info_json.empty()
                                         ? "null"
                                         : footer.build_info_json.c_str());
    return kExitOk;
  }

  std::printf("MDZ archive v2: %s\n", flags.positional[0].c_str());
  std::printf("  dataset:  %s\n",
              footer.name.empty() ? "(unnamed)" : footer.name.c_str());
  std::printf("  contents: %llu snapshots x %llu atoms, %zu frames\n",
              static_cast<unsigned long long>(footer.num_snapshots),
              static_cast<unsigned long long>(footer.num_particles),
              footer.frames.size());
  for (int axis = 0; axis < 3; ++axis) {
    const auto& a = footer.axes[axis];
    std::printf("  axis %c:   %s reference, %s\n", "xyz"[axis],
                ref_name(a.ref_kind),
                a.chained ? "TI-chained" : "independently decodable");
  }
  std::printf("%-6s %-5s %-7s %-12s %-10s %-10s\n", "Frame", "Axis", "Method",
              "Snapshots", "Offset", "Bytes");
  for (size_t i = 0; i < footer.frames.size(); ++i) {
    const auto& f = footer.frames[i];
    char range[32];
    std::snprintf(range, sizeof(range), "%llu:%llu",
                  static_cast<unsigned long long>(f.first_snapshot),
                  static_cast<unsigned long long>(f.first_snapshot +
                                                  f.s_count));
    std::printf("%-6zu %-5c %-7.*s %-12s %-10llu %-10llu\n", i,
                "xyz"[f.axis % 3],
                static_cast<int>(mdz::core::MethodName(f.method).size()),
                mdz::core::MethodName(f.method).data(), range,
                static_cast<unsigned long long>(f.offset),
                static_cast<unsigned long long>(f.frame_size));
  }
  return kExitOk;
}

// Container migration without re-encoding: the axis streams move between
// versions byte-identically (v2 frames hold v1 block payloads verbatim), so
// `repack` then `decompress` matches the original archive exactly.
int CmdRepack(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  uint8_t in_version = 0;
  if (!mdz::archive::SniffArchiveVersion(flags.positional[0], &in_version)) {
    in_version = 0;  // let ReadArchive produce the real error
  }
  auto archive = mdz::io::ReadArchive(flags.positional[0]);
  if (!archive.ok()) return Fail(archive.status());
  const Status s = flags.v1
                       ? mdz::io::WriteArchive(*archive, flags.positional[1])
                       : mdz::io::WriteArchiveV2(*archive, flags.positional[1]);
  if (!s.ok()) return Fail(s);
  Say("repacked %s (v%u) -> %s (v%u)\n", flags.positional[0].c_str(),
      static_cast<unsigned>(in_version), flags.positional[1].c_str(),
      flags.v1 ? 1u : 2u);
  return kExitOk;
}

int CmdVerify(const Flags& flags) {
  if (flags.positional.size() != 2) return Usage();
  auto original = ReadTrajectoryAuto(flags.positional[0]);
  if (!original.ok()) return Fail(original.status());
  auto archive = mdz::io::ReadArchive(flags.positional[1]);
  if (!archive.ok()) return Fail(archive.status());
  auto decoded = mdz::io::DecompressArchive(*archive);
  if (!decoded.ok()) return Fail(decoded.status());

  if (decoded->num_snapshots() != original->num_snapshots() ||
      decoded->num_particles() != original->num_particles()) {
    std::fprintf(stderr, "dimension mismatch\n");
    return kExitFailure;
  }
  std::printf("%-6s %-12s %-12s %-10s\n", "Axis", "MaxError", "NRMSE",
              "PSNR_dB");
  for (int axis = 0; axis < 3; ++axis) {
    const auto m =
        mdz::analysis::ComputeAxisErrorMetrics(*original, *decoded, axis);
    std::printf("%-6c %-12.6g %-12.4g %-10.1f\n", "xyz"[axis], m.max_error,
                m.nrmse, m.psnr);
  }
  return 0;
}

// Hidden test hook (tests/cli_test.sh): dies by the requested signal with a
// span open and a timeline event recorded, so the flight-recorder report
// written on the way down has real content to assert on. Not in Usage().
int CmdSelftestCrash(const Flags& flags) {
  if (flags.positional.size() != 1) return Usage();
  const std::string& kind = flags.positional[0];
  MDZ_SPAN("selftest_crash");
  mdz::obs::Timeline::Global().Record("selftest/crash_imminent",
                                      mdz::obs::EventPhase::kInstant);
  mdz::obs::Timeline::Global().DrainRings();
  if (kind == "abort") {
    std::abort();
  } else if (kind == "segv") {
    std::raise(SIGSEGV);
  } else if (kind == "fpe") {
    std::raise(SIGFPE);
  } else if (kind == "report") {
    // No crash: render the report to stdout for content checks.
    mdz::obs::FlightRecorder::WriteReport(STDOUT_FILENO, 0, nullptr);
    return kExitOk;
  }
  return Usage();
}

// mdzd: the multi-tenant archive daemon (docs/SERVICE.md). --listen is the
// binary protocol endpoint here (not the telemetry one); --http brings up
// the usual ops surfaces (/metrics /healthz ...) with a readiness probe
// wired to the server lifecycle. SIGHUP re-reads --config and applies it
// live; SIGINT/SIGTERM drain (finish in-flight requests, refuse new ones,
// seal) and exit 0.
int CmdServe(const Flags& flags) {
  if (!flags.positional.empty() || flags.root.empty() || flags.listen.empty()) {
    return Usage();
  }
  mdz::obs::ListenAddress listen;
  {
    const Status s = mdz::obs::ParseListenAddress(flags.listen, &listen);
    if (!s.ok()) return Fail(s);
  }

  mdz::serve::ServerConfig config;
  if (!flags.config.empty()) {
    auto loaded = mdz::serve::LoadServerConfig(flags.config);
    if (!loaded.ok()) return Fail(loaded.status());
    config = std::move(loaded).value();
  }
  if (flags.cache_mb != 0) {
    config.cache_bytes = static_cast<size_t>(flags.cache_mb) << 20;
  }

  // Counters/gauges must record regardless of other telemetry flags: the
  // /metrics scrape on --http is the daemon's primary observability surface.
  mdz::obs::SetEnabled(true);

  mdz::core::ThreadPool pool(flags.threads);
  mdz::serve::ArchiveServer::Options options;
  options.listen = listen;
  options.root = flags.root;
  options.config = config;
  options.pool = &pool;
  mdz::serve::ArchiveServer server(options);
  {
    const Status s = server.Start();
    if (!s.ok()) return Fail(s);
  }
  // stderr on purpose (like the telemetry banner): tests and scripts parse
  // the resolved ephemeral ports from here.
  std::fprintf(stderr, "serve: listening on %s:%u (root %s)\n",
               listen.host.c_str(), static_cast<unsigned>(server.port()),
               flags.root.c_str());

  mdz::obs::TelemetryServer http;
  if (!flags.http.empty()) {
    mdz::obs::ListenAddress ops;
    const Status s = mdz::obs::ParseListenAddress(flags.http, &ops);
    if (!s.ok()) return Fail(s);
    mdz::obs::PreRegisterCoreMetrics();
    http.SetReadyProbe([&server] { return server.ready(); });
    const Status hs = http.Start(ops);
    if (!hs.ok()) return Fail(hs);
    std::fprintf(stderr, "serve: ops endpoint http://%s:%u/\n",
                 ops.host.c_str(), static_cast<unsigned>(http.port()));
  }

  InstallSignalHandlers();
  {
    struct sigaction action {};
    action.sa_handler = HandleReloadSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGHUP, &action, nullptr);
  }

  while (!g_interrupted.load()) {
    if (g_reload.exchange(false)) {
      mdz::serve::ServerConfig next = config;
      if (!flags.config.empty()) {
        auto loaded = mdz::serve::LoadServerConfig(flags.config);
        if (!loaded.ok()) {
          // A bad config on SIGHUP must not kill a healthy daemon: log and
          // keep the previous limits.
          std::fprintf(stderr, "serve: reload failed, keeping config: %s\n",
                       loaded.status().ToString().c_str());
          continue;
        }
        next = std::move(loaded).value();
        if (flags.cache_mb != 0) {
          next.cache_bytes = static_cast<size_t>(flags.cache_mb) << 20;
        }
      }
      server.Reload(next);
      config = next;
      std::fprintf(stderr, "serve: config reloaded\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "serve: draining\n");
  server.Drain();
  http.Stop();
  std::fprintf(stderr, "serve: drained, %llu connections served\n",
               static_cast<unsigned long long>(server.connections_accepted()));
  return kExitOk;
}

// Client front end for a running `mdz serve`:
//   mdz query <host:port> stat|open|index|audit <archive>
//   mdz query <host:port> extract <archive> <out> --snapshots a:b
//               [--particles p:q]
//   mdz query <host:port> append <archive> <in.mdtraj|.xyz>
int CmdQuery(const Flags& flags) {
  if (flags.positional.size() < 3) return Usage();
  mdz::obs::ListenAddress addr;
  {
    const Status s =
        mdz::obs::ParseListenAddress(flags.positional[0], &addr);
    if (!s.ok()) return Fail(s);
  }
  if (addr.port == 0) {
    return Fail(Status::InvalidArgument("query needs an explicit port"));
  }
  const std::string& sub = flags.positional[1];
  const std::string& archive = flags.positional[2];

  mdz::serve::Client::Options client_options;
  if (!flags.tenant.empty()) client_options.tenant = flags.tenant;
  client_options.deadline_ms = flags.deadline_ms;
  auto client =
      mdz::serve::Client::Connect(addr.host, addr.port, client_options);
  if (!client.ok()) return Fail(client.status());

  const auto print_info = [](const mdz::serve::ArchiveInfo& info) {
    Say("%s: %llu snapshots x %llu atoms, %llu frames (generation %llu)\n",
        info.name.empty() ? "(unnamed)" : info.name.c_str(),
        static_cast<unsigned long long>(info.num_snapshots),
        static_cast<unsigned long long>(info.num_particles),
        static_cast<unsigned long long>(info.num_frames),
        static_cast<unsigned long long>(info.generation));
  };

  if (sub == "stat" || sub == "open") {
    if (flags.positional.size() != 3) return Usage();
    auto info = sub == "open" ? (*client)->Open(archive)
                              : (*client)->Stat(archive);
    if (!info.ok()) return Fail(info.status());
    print_info(*info);
    return kExitOk;
  }
  if (sub == "index") {
    if (flags.positional.size() != 3) return Usage();
    auto index = (*client)->Index(archive);
    if (!index.ok()) return Fail(index.status());
    Say("%-6s %-5s %-7s %-12s %-10s\n", "Frame", "Axis", "Method",
        "Snapshots", "Bytes");
    for (size_t i = 0; i < index->size(); ++i) {
      const auto& f = (*index)[i];
      char range[32];
      std::snprintf(range, sizeof(range), "%llu:%llu",
                    static_cast<unsigned long long>(f.first_snapshot),
                    static_cast<unsigned long long>(f.first_snapshot +
                                                    f.s_count));
      const auto method = static_cast<mdz::core::Method>(f.method);
      Say("%-6zu %-5c %-7.*s %-12s %-10llu\n", i, "xyz"[f.axis % 3],
          static_cast<int>(mdz::core::MethodName(method).size()),
          mdz::core::MethodName(method).data(), range,
          static_cast<unsigned long long>(f.frame_size));
    }
    return kExitOk;
  }
  if (sub == "audit") {
    if (flags.positional.size() != 3) return Usage();
    auto audit = (*client)->Audit(archive);
    if (!audit.ok()) return Fail(audit.status());
    Say("audit: %llu frames, %llu payload bytes verified\n",
        static_cast<unsigned long long>(audit->frames),
        static_cast<unsigned long long>(audit->payload_bytes));
    return kExitOk;
  }
  if (sub == "extract") {
    if (flags.positional.size() != 4 || flags.snapshots.empty()) {
      return Usage();
    }
    auto snap_range = ParseRange(flags.snapshots, "--snapshots");
    if (!snap_range.ok()) return Fail(snap_range.status());
    uint64_t first_particle = 0;
    uint64_t particle_count = 0;  // 0 = whole snapshots
    if (!flags.particles.empty()) {
      auto part_range = ParseRange(flags.particles, "--particles");
      if (!part_range.ok()) return Fail(part_range.status());
      first_particle = part_range->first;
      particle_count = part_range->second;
    }
    // Stat first for the trajectory header (name, box) the wire extract
    // reply does not carry.
    auto info = (*client)->Stat(archive);
    if (!info.ok()) return Fail(info.status());
    auto snapshots =
        (*client)->Extract(archive, snap_range->first, snap_range->second,
                           first_particle, particle_count);
    if (!snapshots.ok()) return Fail(snapshots.status());
    Trajectory trajectory;
    trajectory.name = info->name;
    trajectory.box = {info->box[0], info->box[1], info->box[2]};
    trajectory.snapshots = std::move(snapshots).value();
    const Status s = WriteTrajectoryAuto(trajectory, flags.positional[3]);
    if (!s.ok()) return Fail(s);
    Say("extracted %zu snapshots x %zu atoms -> %s\n",
        trajectory.num_snapshots(), trajectory.num_particles(),
        flags.positional[3].c_str());
    return kExitOk;
  }
  if (sub == "append") {
    if (flags.positional.size() != 4) return Usage();
    auto trajectory = ReadTrajectoryAuto(flags.positional[3]);
    if (!trajectory.ok()) return Fail(trajectory.status());
    auto info = (*client)->Append(archive, trajectory->snapshots);
    if (!info.ok()) return Fail(info.status());
    Say("appended %zu snapshots to %s (%llu total, generation %llu)\n",
        trajectory->num_snapshots(), archive.c_str(),
        static_cast<unsigned long long>(info->num_snapshots),
        static_cast<unsigned long long>(info->generation));
    return kExitOk;
  }
  return Usage();
}

int RunCommand(const std::string& command, const Flags& flags) {
  if (command == "datasets") return CmdDatasets();
  if (command == "gen") return CmdGen(flags);
  if (command == "compress") return CmdCompress(flags);
  if (command == "decompress") return CmdDecompress(flags);
  if (command == "append") return CmdAppend(flags);
  if (command == "extract") return CmdExtract(flags);
  if (command == "index") return CmdIndex(flags);
  if (command == "repack") return CmdRepack(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "audit") return CmdAudit(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "version") return CmdVersion(flags);
  if (command == "selftest-crash") return CmdSelftestCrash(flags);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.status());

  if (!flags->simd.empty()) {
    // Validated during parsing; unsupported-on-host variants fall back to
    // scalar (output is byte-identical either way — see docs/KERNELS.md).
    mdz::util::SetSimdVariant(*mdz::util::ParseSimdVariant(flags->simd));
  }

  // --- Observability lifecycle (docs/OBSERVABILITY.md) ---------------------
  // Validate --listen before doing any work so garbage is a plain usage
  // error (exit 2), then bring the telemetry surfaces up around the command:
  // timeline recording + root trace, the HTTP endpoint, and the resource
  // sampler. All of it tears down after the command, flushing the timeline
  // file last so the teardown itself is still visible in the trace.
  // `mdz serve` repurposes --listen as the binary protocol endpoint and
  // brings up its own ops endpoint via --http, so the generic telemetry
  // server must stay out of the way there.
  const bool serve_command = command == "serve";
  mdz::obs::ListenAddress listen_address;
  if (!flags->listen.empty() && !serve_command) {
    const Status s =
        mdz::obs::ParseListenAddress(flags->listen, &listen_address);
    if (!s.ok()) return Fail(s);
  }
  const bool tracing = !flags->trace_timeline.empty();
  const bool listening = !flags->listen.empty() && !serve_command;
  const bool profiling = flags->profile;
  const bool recording_flight = !flags->flight_recorder.empty();
  if ((tracing || listening || profiling || recording_flight) &&
      mdz::obs::GetBuildInfo().obs_disabled) {
    return Fail(Status::FailedPrecondition(
        "--trace-timeline/--listen/--profile/--flight-recorder need "
        "telemetry compiled in "
        "(this binary was built with MDZ_OBS_DISABLED)"));
  }
  if (recording_flight) {
    // Install before any work runs — a crash during setup should still
    // report. Enabled + recording so the report carries metric values and
    // at least the most recent timeline events.
    mdz::obs::SetEnabled(true);
    mdz::obs::Timeline::Global().SetRecording(true);
    mdz::obs::SetTimelineThreadName("main");
    const Status s = mdz::obs::FlightRecorder::Install(flags->flight_recorder);
    if (!s.ok()) return Fail(s);
  }
  if (profiling) mdz::obs::SetEnabled(true);
  if (tracing || listening) {
    mdz::obs::SetEnabled(true);
    // /tracez needs span events even without a --trace-timeline file, and
    // ring memory is only allocated per recording thread, so recording is
    // on for both surfaces.
    mdz::obs::Timeline::Global().SetRecording(true);
    mdz::obs::SetTimelineThreadName("main");
    // One root trace per CLI invocation: every span recorded below — on any
    // thread the pool or the pump hands work to — carries this trace id.
    mdz::obs::BeginTrace();
  }

  mdz::obs::TelemetryServer server;
  if (listening) {
    // Families must exist before the first scrape (not appear mid-run), so
    // a live /metrics read and the end-of-run dump expose the same set.
    mdz::obs::PreRegisterCoreMetrics();
    const Status s = server.Start(listen_address);
    if (!s.ok()) return Fail(s);
    // stderr on purpose: --quiet only silences informational stdout, and
    // tests (and humans redirecting stdout) need the resolved port.
    std::fprintf(stderr, "telemetry: listening on http://%s:%u/\n",
                 listen_address.host.c_str(),
                 static_cast<unsigned>(server.port()));
  }

  mdz::obs::ResourceSampler sampler(
      nullptr,
      [] {
        return static_cast<uint64_t>(std::max<int64_t>(
            0, mdz::obs::MetricsRegistry::Global()
                   .GetGauge("pool/queue_depth")
                   ->Value()));
      },
      [] {
        return mdz::obs::MetricsRegistry::Global()
            .GetCounter("compress/bytes_out")
            ->Value();
      });
  if (tracing || listening) sampler.Start(/*interval_ms=*/50);

  if (flags->stream || listening || tracing || command == "append") {
    InstallSignalHandlers();
  }

  if (profiling) {
    const Status s = mdz::obs::Profiler::Global().Start(flags->profile_hz);
    if (!s.ok()) return Fail(s);
  }

  int code = RunCommand(command, *flags);

  if (profiling) {
    auto& profiler = mdz::obs::Profiler::Global();
    profiler.Stop();
    const std::string out_path = flags->profile_out.empty()
                                     ? "mdz-profile.folded"
                                     : flags->profile_out;
    const mdz::obs::ProfileReport report =
        mdz::obs::AggregateProfile(profiler.Snapshot());
    const Status s = mdz::obs::WriteProfileFile(
        report, profiler.hz(), profiler.duration_seconds(),
        profiler.dropped(), profiler.overruns(), out_path);
    if (!s.ok()) {
      const int pcode = Fail(s);
      if (code == kExitOk) code = pcode;
    } else {
      Say("profile: %llu samples (%llu dropped, %llu overruns) -> %s\n",
          static_cast<unsigned long long>(report.sample_count),
          static_cast<unsigned long long>(profiler.dropped()),
          static_cast<unsigned long long>(profiler.overruns()),
          out_path.c_str());
    }
  }

  sampler.Stop();
  server.Stop();
  if (tracing) {
    auto& timeline = mdz::obs::Timeline::Global();
    timeline.SetRecording(false);
    const Status ts =
        mdz::obs::WriteChromeTraceFile(timeline, flags->trace_timeline);
    if (!ts.ok()) {
      const int tcode = Fail(ts);
      if (code == kExitOk) code = tcode;
    } else {
      Say("timeline: %zu events -> %s\n", timeline.store_size(),
          flags->trace_timeline.c_str());
    }
  }
  return code;
}
