#!/bin/sh
# Sanitizer CI matrix for the MDZ tree.
#
#   tools/ci.sh [build-root]
#
# Builds and tests three configurations (one build tree each under the
# build root, default ./build-ci):
#   address    full ctest suite under AddressSanitizer
#   undefined  full ctest suite under UndefinedBehaviorSanitizer
#   thread     thread-pool, parallel, obs, and fuzz tests under
#              ThreadSanitizer
#
# The thread configuration runs only the concurrency-relevant binaries:
# TSan's false-sharing-free runtime makes the full suite needlessly slow,
# and the remaining tests are single-threaded by construction.
#
# After the matrix, a telemetry smoke step compresses a generated trajectory
# with --metrics-json/--metrics-prom/--trace and validates the artifacts
# with tools/check_telemetry.sh, audits the archive against its original; a
# live-endpoint smoke streams a compression with --listen up and scrapes
# /metrics mid-run with curl, requiring the live families to match the
# final --metrics-prom dump; a serve smoke boots the mdzd daemon on
# ephemeral ports, round-trips query extract/append against it, scrapes
# its metric families and readiness, and requires a clean SIGTERM drain;
# and a bench smoke step runs three figure
# benches, pipeline_stages, the archive random-access, streaming, and
# serve benches, and the observability-overhead guard at a small scale, archives
# their BENCH_*.json reports under the build root and
# gates the compression ratios against the committed bench/baselines via
# tools/bench_diff (throughput is machine-dependent, so MB/s is ignored).
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-${ROOT}/build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  san="$1"
  shift
  build="${BUILD_ROOT}/${san}"
  echo "=== [${san}] configure + build ==="
  cmake -B "${build}" -S "${ROOT}" -DMDZ_SANITIZE="${san}" >/dev/null
  cmake --build "${build}" -j "${JOBS}"
  echo "=== [${san}] test ==="
  "$@"
}

# SIMD leg of the matrix: the address leg pins MDZ_SIMD=scalar and the
# undefined leg runs the best variant the host supports (avx2 when present,
# otherwise the probe's default). Every kernel variant is property-tested
# against scalar inside the suite either way; the pinning ensures both the
# scalar reference and the dispatched SIMD code run under sanitizers.
SIMD_BEST="scalar"
if grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null; then
  SIMD_BEST="avx2"
fi
echo "=== SIMD matrix: address=scalar, undefined=${SIMD_BEST} ==="

MDZ_SIMD=scalar run_config address \
  sh -c "cd '${BUILD_ROOT}/address' && MDZ_SIMD=scalar ctest --output-on-failure -j '${JOBS}'"

MDZ_SIMD="${SIMD_BEST}" run_config undefined \
  sh -c "cd '${BUILD_ROOT}/undefined' && MDZ_SIMD='${SIMD_BEST}' ctest --output-on-failure -j '${JOBS}'"

run_config thread \
  "${BUILD_ROOT}/thread/tests/mdz_tests" \
  --gtest_filter='ThreadPoolTest.*:ParallelTest.*:FuzzTest.*:Obs*.*:PipelineStatsTest.*:FrameCacheTest.*:SchedulerTest.*:ServerConfigTest.*:ProtocolTest.*:ServeTest.*:BlockCodecTest.AdpWithNewCandidatesByteIdenticalAcrossThreads:BlockCodecTest.CompressFieldByteIdenticalAcrossVariantsAndThreads'

echo "=== telemetry smoke ==="
# The address tree is a normal (instrumented) build of the mdz binary; use
# it so the smoke also runs under ASan. --threads 2 forces a real pool even
# on single-core runners, so the pool gauges light up.
MDZ_BIN="${BUILD_ROOT}/address/tools/mdz"
SMOKE="${BUILD_ROOT}/telemetry-smoke"
rm -rf "${SMOKE}"
mkdir -p "${SMOKE}"
"${MDZ_BIN}" gen LJ "${SMOKE}/traj.mdtraj" --scale 0.3 --seed 3 --quiet
"${MDZ_BIN}" compress "${SMOKE}/traj.mdtraj" "${SMOKE}/traj.mdza" \
  --threads 2 --quiet \
  --metrics-json "${SMOKE}/metrics.json" \
  --metrics-prom "${SMOKE}/metrics.prom" \
  --trace "${SMOKE}/trace.jsonl"
"${MDZ_BIN}" audit "${SMOKE}/traj.mdza" "${SMOKE}/traj.mdtraj" \
  --json --quiet > "${SMOKE}/quality.json"
sh "${ROOT}/tools/check_telemetry.sh" \
  "${SMOKE}/metrics.json" "${SMOKE}/metrics.prom" "${SMOKE}/trace.jsonl" \
  "${SMOKE}/quality.json"
"${MDZ_BIN}" stats "${SMOKE}/traj.mdza" --json | grep -q '"axes":\['

# Profiler smoke, on both instrumented trees: a --profile run must leave the
# archive byte-identical to an unprofiled one and produce a valid
# mdz.profile.v1 report (checked by check_telemetry.sh's fifth argument).
for san in address undefined; do
  echo "=== profiler smoke (${san}) ==="
  SAN_BIN="${BUILD_ROOT}/${san}/tools/mdz"
  PROF="${BUILD_ROOT}/profiler-smoke-${san}"
  rm -rf "${PROF}"
  mkdir -p "${PROF}"
  "${SAN_BIN}" gen LJ "${PROF}/traj.mdtraj" --scale 0.3 --seed 7 --quiet
  "${SAN_BIN}" compress "${PROF}/traj.mdtraj" "${PROF}/profiled.mdza" \
    --threads 2 --quiet \
    --profile=99 --profile-out "${PROF}/profile.json" \
    --metrics-json "${PROF}/metrics.json" \
    --metrics-prom "${PROF}/metrics.prom" \
    --trace "${PROF}/trace.jsonl"
  "${SAN_BIN}" compress "${PROF}/traj.mdtraj" "${PROF}/plain.mdza" \
    --threads 2 --quiet
  cmp "${PROF}/profiled.mdza" "${PROF}/plain.mdza"
  sh "${ROOT}/tools/check_telemetry.sh" \
    "${PROF}/metrics.json" "${PROF}/metrics.prom" "${PROF}/trace.jsonl" \
    "" "${PROF}/profile.json"
done

echo "=== live endpoint smoke ==="
# Stream-compress with the telemetry endpoint up, scrape it mid-run with
# curl, and require the live exposition to carry the same metric families
# as the end-of-run --metrics-prom dump (the dump may add span/* histogram
# families recorded after the scrape; nothing else may differ).
LIVE="${BUILD_ROOT}/live-smoke"
rm -rf "${LIVE}"
mkdir -p "${LIVE}"
"${MDZ_BIN}" gen LJ "${LIVE}/traj.mdtraj" --scale 0.5 --seed 5 --quiet
"${MDZ_BIN}" compress "${LIVE}/traj.mdtraj" "${LIVE}/traj.mdza" \
  --stream --threads 2 --quiet \
  --listen 127.0.0.1:0 \
  --trace-timeline "${LIVE}/timeline.json" \
  --metrics-prom "${LIVE}/final.prom" 2> "${LIVE}/stderr.log" &
live_pid=$!
port=""
i=0
while [ "$i" -lt 100 ]; do
  port="$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' \
    "${LIVE}/stderr.log")"
  [ -n "$port" ] && break
  i=$((i + 1))
  sleep 0.05
done
test -n "$port"
live_ok=""
i=0
while [ "$i" -lt 200 ]; do
  if curl -sf "http://127.0.0.1:${port}/metrics" > "${LIVE}/live.prom" \
      2>/dev/null; then
    curl -sf "http://127.0.0.1:${port}/healthz" | grep -q '"status":"ok"'
    curl -sf "http://127.0.0.1:${port}/buildz" | grep -q '"git_sha"'
    curl -sf "http://127.0.0.1:${port}/flightz" \
      | grep -q '"schema":"mdz.flightz.v1"'
    live_ok=1
    break
  fi
  kill -0 "$live_pid" 2>/dev/null || break
  i=$((i + 1))
  sleep 0.02
done
wait "$live_pid"
test -n "$live_ok"
grep '^# TYPE' "${LIVE}/live.prom" | sort > "${LIVE}/live.families"
grep '^# TYPE' "${LIVE}/final.prom" | sort > "${LIVE}/final.families"
# Every live family must appear in the final dump...
comm -23 "${LIVE}/live.families" "${LIVE}/final.families" > "${LIVE}/extra"
test ! -s "${LIVE}/extra"
# ...and only lazily-registered span histograms may be final-dump-only.
grep -v '^# TYPE mdz_span_' "${LIVE}/final.families" > "${LIVE}/final.core"
comm -13 "${LIVE}/live.families" "${LIVE}/final.core" > "${LIVE}/missing"
test ! -s "${LIVE}/missing"
# The timeline written by the same run is loadable Chrome trace JSON with
# spans from several threads.
grep -q '"traceEvents":\[' "${LIVE}/timeline.json"
grep -q '"name":"thread_name"' "${LIVE}/timeline.json"

echo "=== serve smoke ==="
# Bring up the mdzd daemon (docs/SERVICE.md) on ephemeral ports with the
# ASan-instrumented binary, run one query extract (byte-identical to the
# direct CLI extract) and one append (generation bump), scrape the ops
# endpoint for the serve/* metric families and readiness, then SIGTERM and
# require a clean drain (exit 0).
SERVE="${BUILD_ROOT}/serve-smoke"
rm -rf "${SERVE}"
mkdir -p "${SERVE}/root"
"${MDZ_BIN}" gen LJ "${SERVE}/full.mdtraj" --scale 0.3 --seed 11 --quiet
"${MDZ_BIN}" compress "${SERVE}/full.mdtraj" "${SERVE}/full.mdza" --quiet
# The served archive must end on a full codec buffer for append to reseal:
# build it from an exact 30-snapshot slice, and keep a 10-snapshot slice as
# the append input.
"${MDZ_BIN}" extract "${SERVE}/full.mdza" "${SERVE}/base.mdtraj" \
  --snapshots 0:30 --quiet
"${MDZ_BIN}" extract "${SERVE}/full.mdza" "${SERVE}/tail.mdtraj" \
  --snapshots 30:40 --quiet
"${MDZ_BIN}" compress "${SERVE}/base.mdtraj" "${SERVE}/root/traj.mdza" --quiet
"${MDZ_BIN}" serve --root "${SERVE}/root" --listen 127.0.0.1:0 \
  --http 127.0.0.1:0 --threads 2 2> "${SERVE}/stderr.log" &
serve_pid=$!
bin_port=""
ops_port=""
i=0
while [ "$i" -lt 200 ]; do
  bin_port="$(sed -n \
    's#^serve: listening on 127\.0\.0\.1:\([0-9]*\) .*#\1#p' \
    "${SERVE}/stderr.log")"
  ops_port="$(sed -n \
    's#^serve: ops endpoint http://127\.0\.0\.1:\([0-9]*\)/$#\1#p' \
    "${SERVE}/stderr.log")"
  [ -n "$bin_port" ] && [ -n "$ops_port" ] && break
  kill -0 "$serve_pid" 2>/dev/null
  i=$((i + 1))
  sleep 0.05
done
test -n "$bin_port"
test -n "$ops_port"
serve_ready=""
i=0
while [ "$i" -lt 200 ]; do
  if curl -sf "http://127.0.0.1:${ops_port}/healthz" \
      | grep -q '"ready":true'; then
    serve_ready=1
    break
  fi
  i=$((i + 1))
  sleep 0.02
done
test -n "$serve_ready"
"${MDZ_BIN}" query "127.0.0.1:${bin_port}" stat traj.mdza \
  | grep -q '30 snapshots'
"${MDZ_BIN}" query "127.0.0.1:${bin_port}" extract traj.mdza \
  "${SERVE}/served.mdtraj" --snapshots 5:15 --quiet
"${MDZ_BIN}" extract "${SERVE}/root/traj.mdza" "${SERVE}/direct.mdtraj" \
  --snapshots 5:15 --quiet
cmp "${SERVE}/served.mdtraj" "${SERVE}/direct.mdtraj"
"${MDZ_BIN}" query "127.0.0.1:${bin_port}" append traj.mdza \
  "${SERVE}/tail.mdtraj" | grep -q 'generation 2'
"${MDZ_BIN}" query "127.0.0.1:${bin_port}" stat traj.mdza \
  | grep -q '40 snapshots'
curl -sf "http://127.0.0.1:${ops_port}/metrics" > "${SERVE}/metrics.prom"
grep -q '^mdz_serve_requests' "${SERVE}/metrics.prom"
grep -q '^mdz_cache_bytes_in_use' "${SERVE}/metrics.prom"
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q '^serve: drained, ' "${SERVE}/stderr.log"

echo "=== bench smoke + regression gate ==="
BENCH_DIR="${BUILD_ROOT}/bench-smoke"
rm -rf "${BENCH_DIR}"
mkdir -p "${BENCH_DIR}"
for bench in fig9_quant_scale fig11_adp_vs_modes fig15_throughput \
             pipeline_stages bench_random_access bench_streaming \
             bench_serve obs_overhead profiler_overhead; do
  echo "--- ${bench} (MDZ_BENCH_SCALE=0.05) ---"
  (cd "${BENCH_DIR}" &&
   MDZ_BENCH_SCALE=0.05 "${BUILD_ROOT}/address/bench/${bench}" >/dev/null)
done
# micro_kernels covers every registered SIMD variant per kernel; a short
# min_time keeps the ASan-instrumented run fast — throughput is ignored by
# the gate anyway, the smoke checks that every variant actually runs.
echo "--- micro_kernels (min_time=0.05) ---"
(cd "${BENCH_DIR}" &&
 "${BUILD_ROOT}/address/bench/micro_kernels" \
   --benchmark_min_time=0.05 >/dev/null)
rm -f "${BENCH_DIR}/BENCH_pipeline_metrics.json"
ls "${BENCH_DIR}"/BENCH_*.json
"${BUILD_ROOT}/address/tools/bench_diff" \
  "${ROOT}/bench/baselines" "${BENCH_DIR}" --ignore-unit "MB/s" --quiet

echo "=== sanitizer matrix passed ==="
