#!/bin/sh
# Sanitizer CI matrix for the MDZ tree.
#
#   tools/ci.sh [build-root]
#
# Builds and tests three configurations (one build tree each under the
# build root, default ./build-ci):
#   address    full ctest suite under AddressSanitizer
#   undefined  full ctest suite under UndefinedBehaviorSanitizer
#   thread     thread-pool, parallel, and fuzz tests under ThreadSanitizer
#
# The thread configuration runs only the concurrency-relevant binaries:
# TSan's false-sharing-free runtime makes the full suite needlessly slow,
# and the remaining tests are single-threaded by construction.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-${ROOT}/build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  san="$1"
  shift
  build="${BUILD_ROOT}/${san}"
  echo "=== [${san}] configure + build ==="
  cmake -B "${build}" -S "${ROOT}" -DMDZ_SANITIZE="${san}" >/dev/null
  cmake --build "${build}" -j "${JOBS}"
  echo "=== [${san}] test ==="
  "$@"
}

run_config address \
  sh -c "cd '${BUILD_ROOT}/address' && ctest --output-on-failure -j '${JOBS}'"

run_config undefined \
  sh -c "cd '${BUILD_ROOT}/undefined' && ctest --output-on-failure -j '${JOBS}'"

run_config thread \
  "${BUILD_ROOT}/thread/tests/mdz_tests" \
  --gtest_filter='ThreadPoolTest.*:ParallelTest.*:FuzzTest.*'

echo "=== sanitizer matrix passed ==="
